//===- ServerTest.cpp - Concurrent line-protocol front-end ----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TCP/unix-socket Server front-end: K parallel clients produce
/// byte-identical transcripts to the serial stdin REPL, overload sheds at
/// --max-conns, a mid-request disconnect never hurts other connections,
/// oversized/garbage lines get the REPL's structured errors per
/// connection, requestStop() drains in-flight requests, idle connections
/// are reaped, and a `resolve` epoch swap under live query load keeps
/// every reader on a consistent snapshot (the TSan leg runs this suite).
/// The E2e test drives `ptatool serve --unix-socket` in a subprocess and
/// proves SIGTERM exits 0 after a graceful drain.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "adt/Rng.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "serve/ServeSession.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include "TestTimeouts.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <netinet/in.h>
#include <poll.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ag;
using ag::test::scaledMs;
using Clock = std::chrono::steady_clock;

namespace {

Snapshot makeSnapshot(const ConstraintSystem &CS) {
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution = solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                        nullptr, SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  return Snap;
}

ConstraintSystem tinySystem() {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o"), Q = CS.addNode("q");
  CS.addAddressOf(P, O);
  CS.addCopy(Q, P);
  return CS;
}

ConstraintSystem mediumSystem() {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  Spec.Seed = 31;
  return generateBenchmark(Spec);
}

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectTcp(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Off += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

/// Reads until EOF or the deadline; a hung server fails the test instead
/// of hanging it.
std::string readToEof(int Fd, std::chrono::milliseconds Deadline) {
  std::string Out;
  auto End = Clock::now() + Deadline;
  char Buf[4096];
  for (;;) {
    auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        End - Clock::now());
    if (Remain.count() <= 0)
      break;
    pollfd P = {Fd, POLLIN, 0};
    int R = ::poll(&P, 1, int(Remain.count()));
    if (R <= 0 && errno != EINTR)
      break;
    if (R <= 0)
      continue;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Out.append(Buf, size_t(N));
  }
  return Out;
}

/// Incremental line reader over one socket (keeps the partial tail
/// between calls).
struct LineReader {
  int Fd;
  std::string Buf;

  /// Next '\n'-terminated line (without the newline); false on EOF or
  /// deadline.
  bool next(std::string &Line, std::chrono::milliseconds Deadline) {
    auto End = Clock::now() + Deadline;
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return true;
      }
      auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
          End - Clock::now());
      if (Remain.count() <= 0)
        return false;
      pollfd P = {Fd, POLLIN, 0};
      int R = ::poll(&P, 1, int(Remain.count()));
      if (R <= 0) {
        if (R < 0 && errno == EINTR)
          continue;
        return false;
      }
      char Tmp[4096];
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N <= 0)
        return false;
      Buf.append(Tmp, size_t(N));
    }
  }
};

/// Writes the whole script, half-closes, reads the full transcript.
std::string runScript(int Fd, const std::string &Script,
                      std::chrono::milliseconds Deadline) {
  EXPECT_TRUE(sendAll(Fd, Script));
  ::shutdown(Fd, SHUT_WR);
  return readToEof(Fd, Deadline);
}

/// A deterministic per-client query mix (read-only commands plus
/// structured-error lines, so replies are independent of what other
/// clients do to the shared session).
std::string makeScript(uint32_t NumNodes, uint64_t Seed, size_t Lines) {
  Rng R(Seed);
  std::ostringstream S;
  for (size_t I = 0; I != Lines; ++I) {
    switch (R.nextBelow(5)) {
    case 0:
      S << "pts " << R.nextBelow(NumNodes) << "\n";
      break;
    case 1:
      S << "alias " << R.nextBelow(NumNodes) << " " << R.nextBelow(NumNodes)
        << "\n";
      break;
    case 2:
      S << "pointedby " << R.nextBelow(NumNodes) << "\n";
      break;
    case 3:
      S << "help\n";
      break;
    default:
      S << "no-such-command-" << R.nextBelow(100) << "\n";
      break;
    }
  }
  S << "quit\n";
  return S.str();
}

TEST(Server, EightParallelClientsAreByteIdenticalToSerialRepl) {
  Snapshot Snap = makeSnapshot(mediumSystem());
  const uint32_t NumNodes = Snap.CS.numNodes();

  constexpr size_t NumClients = 8;
  std::vector<std::string> Scripts, Expected;
  for (size_t I = 0; I != NumClients; ++I) {
    Scripts.push_back(makeScript(NumNodes, /*Seed=*/1000 + I, 40));
    // The serial reference: a fresh REPL run over the same snapshot.
    ServeSession Ref(Snap);
    std::istringstream In(Scripts.back());
    std::ostringstream Out;
    EXPECT_EQ(Ref.run(In, Out), 0);
    Expected.push_back(Out.str());
  }

  ServeSession Session(Snap);
  ServerOptions SrvOpts;
  SrvOpts.Workers = 4;
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  std::vector<std::string> Got(NumClients);
  std::vector<std::thread> Clients;
  for (size_t I = 0; I != NumClients; ++I)
    Clients.emplace_back([&, I] {
      int Fd = connectTcp(Srv.port());
      ASSERT_GE(Fd, 0);
      Got[I] = runScript(Fd, Scripts[I], scaledMs(20000));
      ::close(Fd);
    });
  for (std::thread &T : Clients)
    T.join();
  Srv.stop();

  for (size_t I = 0; I != NumClients; ++I)
    EXPECT_EQ(Got[I], Expected[I])
        << "client " << I << " transcript diverged from the serial REPL";
  EXPECT_EQ(Srv.counters().Accepted, NumClients);
}

TEST(Server, MaxConnsRejectsExtraClientsWithStructuredError) {
  ServeSession Session(makeSnapshot(tinySystem()));
  ServerOptions SrvOpts;
  SrvOpts.MaxConns = 2;
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  int A = connectTcp(Srv.port());
  int B = connectTcp(Srv.port());
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  // Both admitted clients must see the banner before the third connects,
  // otherwise its accept can race theirs.
  LineReader Ra{A, {}}, Rb{B, {}};
  std::string Banner;
  ASSERT_TRUE(Ra.next(Banner, scaledMs(5000)));
  EXPECT_NE(Banner.find("serving"), std::string::npos);
  ASSERT_TRUE(Rb.next(Banner, scaledMs(5000)));

  int Extra = connectTcp(Srv.port());
  ASSERT_GE(Extra, 0);
  std::string Reply = readToEof(Extra, scaledMs(5000));
  EXPECT_EQ(Reply, "ERR overloaded: too many connections (max 2)\n");
  ::close(Extra);

  // The admitted connections still serve.
  ASSERT_TRUE(sendAll(A, "pts p\n"));
  std::string Line;
  ASSERT_TRUE(Ra.next(Line, scaledMs(5000)));
  EXPECT_EQ(Line, "pts(p): 1");

  ::close(A);
  ::close(B);
  Srv.stop();
  ServerCounters SC = Srv.counters();
  EXPECT_EQ(SC.Accepted, 2u);
  EXPECT_GE(SC.Rejected, 1u);
}

TEST(Server, MidRequestDisconnectNeverAffectsOtherConnections) {
  ServeSession Session(makeSnapshot(tinySystem()));
  ServerOptions SrvOpts;
  SrvOpts.Workers = 2;
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  // Client A starts a slow request and vanishes mid-flight without
  // reading a byte of the reply.
  int A = connectTcp(Srv.port());
  ASSERT_GE(A, 0);
  ASSERT_TRUE(sendAll(A, "sleep 200\n"));
  ::close(A);

  // Client B gets served normally, before and after A's request lands on
  // the closed socket.
  int B = connectTcp(Srv.port());
  ASSERT_GE(B, 0);
  std::string Transcript = runScript(B, "pts p\nsleep 250\npts q\nquit\n",
                                     scaledMs(20000));
  ::close(B);
  EXPECT_NE(Transcript.find("pts(p): 1\n"), std::string::npos) << Transcript;
  EXPECT_NE(Transcript.find("pts(q): 1\n"), std::string::npos) << Transcript;
  Srv.stop();
}

TEST(Server, OversizedAndGarbageLinesGetReplStructuredErrorsPerConn) {
  ServeOptions SessOpts;
  SessOpts.MaxLineBytes = 64;
  ServeSession Session(makeSnapshot(tinySystem()), SessOpts);
  Server Srv(Session, ServerOptions());
  ASSERT_TRUE(Srv.start().ok());

  int Fd = connectTcp(Srv.port());
  ASSERT_GE(Fd, 0);
  std::string Long(1000, 'x');
  std::string Transcript = runScript(
      Fd, "pts " + Long + "\n\x01\x02garbage\x7f\npts p\nquit\n",
      scaledMs(10000));
  ::close(Fd);
  EXPECT_NE(Transcript.find("error: line too long (max 64 bytes)\n"),
            std::string::npos)
      << Transcript;
  EXPECT_NE(Transcript.find("error: unknown command"), std::string::npos)
      << Transcript;
  EXPECT_NE(Transcript.find("pts(p): 1\n"), std::string::npos) << Transcript;
  EXPECT_EQ(Session.counters().OversizedLines, 1u);

  // A final unterminated line is still served, like the stdin REPL at EOF.
  int Fd2 = connectTcp(Srv.port());
  ASSERT_GE(Fd2, 0);
  std::string T2 = runScript(Fd2, "pts p", scaledMs(10000));
  ::close(Fd2);
  EXPECT_NE(T2.find("pts(p): 1\n"), std::string::npos) << T2;
  Srv.stop();
}

TEST(Server, UnixSocketInUseIsRefusedStaleIsReclaimed) {
  std::string Sock = ::testing::TempDir() + "server_inuse.sock";
  ::unlink(Sock.c_str());

  ServeSession SessionA(makeSnapshot(tinySystem()));
  ServerOptions SrvOpts;
  SrvOpts.UnixSocketPath = Sock;
  Server A(SessionA, SrvOpts);
  ASSERT_TRUE(A.start().ok());

  // A second server on the same path must fail instead of silently
  // unlinking the live server's socket and stealing the endpoint.
  ServeSession SessionB(makeSnapshot(tinySystem()));
  Server B(SessionB, SrvOpts);
  Status St = B.start();
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.toString().find("in use"), std::string::npos) << St.toString();

  // The first server still owns the endpoint and still serves.
  int Fd = connectUnix(Sock);
  ASSERT_GE(Fd, 0);
  std::string T = runScript(Fd, "pts p\nquit\n", scaledMs(10000));
  ::close(Fd);
  EXPECT_NE(T.find("pts(p): 1\n"), std::string::npos) << T;
  A.stop();
  EXPECT_NE(::access(Sock.c_str(), F_OK), 0);

  // A stale path — bound once by a process that died without unlinking —
  // is reclaimed: connect() on it gets ECONNREFUSED, so startup proceeds.
  int Stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Stale, 0);
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Sock.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Sock.c_str(), Sock.size() + 1);
  ASSERT_EQ(::bind(Stale, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ::close(Stale);
  ASSERT_EQ(::access(Sock.c_str(), F_OK), 0);

  ServeSession SessionC(makeSnapshot(tinySystem()));
  Server C(SessionC, SrvOpts);
  ASSERT_TRUE(C.start().ok());
  int Fd2 = connectUnix(Sock);
  ASSERT_GE(Fd2, 0);
  std::string T2 = runScript(Fd2, "pts p\nquit\n", scaledMs(10000));
  ::close(Fd2);
  EXPECT_NE(T2.find("pts(p): 1\n"), std::string::npos) << T2;
  C.stop();
}

TEST(Server, FloodingNonReaderNeverStallsOtherClients) {
  ServeOptions SessOpts;
  SessOpts.MaxLineBytes = 64;
  ServeSession Session(makeSnapshot(tinySystem()), SessOpts);
  ServerOptions SrvOpts;
  SrvOpts.Workers = 2;
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  // The flooder pipelines oversized garbage and never reads a byte:
  // every line earns an error reply it will not consume, so the server
  // side of its socket wedges — the exact overload these replies handle.
  // The poll thread must keep serving everyone else regardless; only the
  // flooder's own worker may stall, and the pending-reply cap kills the
  // connection. A tiny receive buffer (set before connect so the
  // handshake honors it) makes the wedge happen fast.
  std::atomic<bool> Done{false};
  std::thread Flooder([&] {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return;
    int Small = 2048;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Small, sizeof(Small));
    timeval SendTimeout = {0, 200000}; // Bounded sends keep join() safe.
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                 sizeof(SendTimeout));
    sockaddr_in Addr = {};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Srv.port());
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      std::string Chunk;
      for (int I = 0; I != 128; ++I)
        Chunk += std::string(80, 'z') + "\n";
      while (!Done.load() && sendAll(Fd, Chunk)) {
      }
    }
    ::close(Fd);
  });

  // Meanwhile a well-behaved client's round trips must all complete
  // promptly: a poll thread that blocks sending the flooder's error
  // replies would starve this connection's reads and admissions.
  int B = connectTcp(Srv.port());
  ASSERT_GE(B, 0);
  LineReader Rb{B, {}};
  std::string Line;
  ASSERT_TRUE(Rb.next(Line, scaledMs(5000))); // Banner.
  for (int I = 0; I != 30; ++I) {
    ASSERT_TRUE(sendAll(B, "pts p\n"));
    ASSERT_TRUE(Rb.next(Line, scaledMs(5000)))
        << "query " << I << " starved behind the flooder";
    EXPECT_EQ(Line, "pts(p): 1");
  }
  Done.store(true);
  sendAll(B, "quit\n");
  ::close(B);
  Flooder.join();
  Srv.stop();
}

TEST(Server, RequestStopDrainsInFlightRequestsBeforeClosing) {
  ServeSession Session(makeSnapshot(tinySystem()));
  ServerOptions SrvOpts;
  SrvOpts.Workers = 2;
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  int Fd = connectTcp(Srv.port());
  ASSERT_GE(Fd, 0);
  // Two requests in flight / pending when the drain begins; both must be
  // answered before the server closes the connection.
  ASSERT_TRUE(sendAll(Fd, "sleep 200\npts p\n"));
  std::this_thread::sleep_for(scaledMs(50));
  Srv.requestStop();
  std::string Transcript = readToEof(Fd, scaledMs(20000));
  ::close(Fd);
  Srv.wait();
  EXPECT_NE(Transcript.find("slept 200 ms\n"), std::string::npos)
      << Transcript;
  EXPECT_NE(Transcript.find("pts(p): 1\n"), std::string::npos) << Transcript;
}

TEST(Server, IdleConnectionsAreReapedAndCounted) {
  ServeSession Session(makeSnapshot(tinySystem()));
  ServerOptions SrvOpts;
  // The idle clock compares against wall time, so scale the threshold up
  // with the suite instead of the read deadline only.
  SrvOpts.IdleTimeoutSeconds = 0.1 * ag::test::timeoutScale();
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  int Fd = connectTcp(Srv.port());
  ASSERT_GE(Fd, 0);
  // Read everything until the server closes us: only the banner, then EOF
  // once the reaper fires.
  std::string Out = readToEof(Fd, scaledMs(30000));
  ::close(Fd);
  EXPECT_NE(Out.find("serving"), std::string::npos);
  ServerCounters SC = Srv.counters();
  EXPECT_GE(SC.IdleClosed, 1u);
  Srv.stop();
}

TEST(Server, ResolveSwapUnderLiveQueryLoadKeepsReadersConsistent) {
  // Base/delta split where the delta genuinely adds points-to facts.
  ConstraintSystem Full = mediumSystem();
  DeltaSplit Split = splitDelta(Full, 0.3, /*Seed=*/5);
  ConstraintSystem DeltaCS = Full.cloneNodeTable();
  for (const Constraint &Cst : Split.Delta)
    DeltaCS.add(Cst);
  std::string DeltaPath = ::testing::TempDir() + "server_swap_delta.cons";
  ASSERT_TRUE(DeltaCS.writeToFile(DeltaPath));

  Snapshot BaseSnap = makeSnapshot(Split.Base);
  // The snapshot is OVS-reduced, so grow checks below compare against it,
  // not the pre-reduction split.
  const size_t BaseConstraints = BaseSnap.CS.constraints().size();
  ServeSession Session(std::move(BaseSnap));
  ServerOptions SrvOpts;
  SrvOpts.Workers = 4;
  Server Srv(Session, SrvOpts);
  ASSERT_TRUE(Srv.start().ok());

  // Three readers hammer pts while the writer swaps the epoch: every
  // reply must be a complete, well-formed answer from *some* epoch —
  // never a torn or half-built one (TSan guards the memory side).
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Readers;
  for (int RIdx = 0; RIdx != 3; ++RIdx)
    Readers.emplace_back([&, RIdx] {
      int Fd = connectTcp(Srv.port());
      if (Fd < 0) {
        Failed.store(true);
        return;
      }
      LineReader R{Fd, {}};
      std::string Line;
      if (!R.next(Line, scaledMs(10000))) { // Banner.
        Failed.store(true);
        ::close(Fd);
        return;
      }
      for (int I = 0; I != 60 && !Failed.load(); ++I) {
        std::string Q = "pts " + std::to_string((RIdx * 7 + I) % 20) + "\n";
        if (!sendAll(Fd, Q) || !R.next(Line, scaledMs(10000)) ||
            Line.rfind("pts(", 0) != 0) {
          Failed.store(true);
          break;
        }
      }
      sendAll(Fd, "quit\n");
      ::close(Fd);
    });

  // The writer swaps mid-load.
  int WFd = connectTcp(Srv.port());
  ASSERT_GE(WFd, 0);
  std::string WriterOut =
      runScript(WFd, "resolve " + DeltaPath + "\nquit\n", scaledMs(60000));
  ::close(WFd);
  EXPECT_NE(WriterOut.find("resolved: outcome precise"), std::string::npos)
      << WriterOut;

  for (std::thread &T : Readers)
    T.join();
  EXPECT_FALSE(Failed.load()) << "a reader saw a torn or missing reply";
  Srv.stop();

  // The swap stuck: the served system now contains the delta.
  EXPECT_GT(Session.servingSnapshot().CS.constraints().size(),
            BaseConstraints);
}

#ifdef AG_PTATOOL_PATH

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

bool waitForFile(const std::string &Path, std::chrono::milliseconds Limit,
                 bool WantSocket = false) {
  auto End = Clock::now() + Limit;
  while (Clock::now() < End) {
    std::ifstream Probe(Path);
    if (WantSocket) {
      // A socket path is not openable as a file; existence check instead.
      if (::access(Path.c_str(), F_OK) == 0)
        return true;
    } else if (Probe.good()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(ServerE2e, SigtermDrainsUnixSocketServeAndExitsZero) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "server_e2e.cons";
  std::string Snap = Dir + "server_e2e.snap";
  std::string Sock = Dir + "server_e2e.sock";
  std::string ErrPath = Dir + "server_e2e.err";
  std::string PidPath = Dir + "server_e2e.pid";
  std::string RcPath = Dir + "server_e2e.rc";
  ::unlink(Sock.c_str());
  ::unlink(PidPath.c_str());
  ::unlink(RcPath.c_str());

  ASSERT_TRUE(tinySystem().writeToFile(Cons));
  {
    std::string Cmd = std::string(AG_PTATOOL_PATH) + " snapshot " + Cons +
                      " " + Snap + " > /dev/null";
    ASSERT_EQ(WEXITSTATUS(std::system(Cmd.c_str())), 0);
  }

  // Launch the server detached; the orphaned inner shell records the
  // server's pid and, on exit, its status (so the test can assert a
  // graceful 0 without being the parent).
  std::string Cmd = "( ( exec " + std::string(AG_PTATOOL_PATH) + " serve " +
                    Snap + " --unix-socket " + Sock + " 2> " + ErrPath +
                    " ) & echo $! > " + PidPath + "; wait $!; echo $? > " +
                    RcPath + " ) &";
  ASSERT_EQ(WEXITSTATUS(std::system(Cmd.c_str())), 0);
  ASSERT_TRUE(waitForFile(Sock, scaledMs(20000), /*WantSocket=*/true))
      << "server never bound its unix socket; stderr: "
      << slurpFile(ErrPath);

  // One live query through the socket proves the server is up.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Sock.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Sock.c_str(), Sock.size() + 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  ASSERT_TRUE(sendAll(Fd, "pts p\n"));
  LineReader R{Fd, {}};
  std::string Line;
  ASSERT_TRUE(R.next(Line, scaledMs(10000))); // Banner.
  ASSERT_TRUE(R.next(Line, scaledMs(10000)));
  EXPECT_EQ(Line, "pts(p): 1");

  ASSERT_TRUE(waitForFile(PidPath, scaledMs(5000)));
  int Pid = std::atoi(slurpFile(PidPath).c_str());
  ASSERT_GT(Pid, 0);
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);

  // Drain: exit code 0, socket unlinked, our open connection sees EOF.
  ASSERT_TRUE(waitForFile(RcPath, scaledMs(20000)))
      << "server did not exit after SIGTERM; stderr: " << slurpFile(ErrPath);
  std::string Rest = readToEof(Fd, scaledMs(10000));
  ::close(Fd);
  EXPECT_EQ(Rest, "") << "no partial reply may leak during drain";
  EXPECT_EQ(std::atoi(slurpFile(RcPath).c_str()), 0)
      << "stderr: " << slurpFile(ErrPath);
  EXPECT_NE(slurpFile(ErrPath).find("drained:"), std::string::npos);
  EXPECT_NE(::access(Sock.c_str(), F_OK), 0)
      << "the unix socket must be unlinked on shutdown";
}

#endif // AG_PTATOOL_PATH

} // namespace
