//===- ConstraintSystemTest.cpp - Tests for the constraint container ------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "constraints/ConstraintSystem.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

TEST(ConstraintSystem, AddNodeAssignsDenseIds) {
  ConstraintSystem CS;
  EXPECT_EQ(CS.addNode("a"), 0u);
  EXPECT_EQ(CS.addNode("b"), 1u);
  EXPECT_EQ(CS.numNodes(), 2u);
  EXPECT_EQ(CS.nameOf(0), "a");
  EXPECT_EQ(CS.sizeOf(0), 1u);
}

TEST(ConstraintSystem, SizedNodesReserveInteriorSlots) {
  ConstraintSystem CS;
  NodeId S = CS.addNode("struct", 3);
  NodeId Next = CS.addNode("after");
  EXPECT_EQ(S, 0u);
  EXPECT_EQ(Next, 3u) << "interior slots occupy ids";
  EXPECT_EQ(CS.sizeOf(S), 3u);
  EXPECT_EQ(CS.sizeOf(S + 1), 1u);
  EXPECT_EQ(CS.offsetTarget(S, 0), S);
  EXPECT_EQ(CS.offsetTarget(S, 2), S + 2);
  EXPECT_EQ(CS.offsetTarget(S, 3), InvalidNode);
  EXPECT_EQ(CS.offsetTarget(Next, 1), InvalidNode);
}

TEST(ConstraintSystem, FunctionLayout) {
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 2);
  EXPECT_TRUE(CS.isFunction(F));
  EXPECT_EQ(CS.sizeOf(F), 4u) << "fun + ret + 2 params";
  EXPECT_EQ(CS.nameOf(F + ConstraintSystem::FunctionReturnOffset), "f.ret");
  EXPECT_EQ(CS.nameOf(F + ConstraintSystem::FunctionParamOffset), "f.arg0");
  EXPECT_EQ(CS.nameOf(F + ConstraintSystem::FunctionParamOffset + 1),
            "f.arg1");
}

TEST(ConstraintSystem, DeduplicatesConstraints) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b");
  CS.addCopy(A, B);
  CS.addCopy(A, B);
  CS.addAddressOf(A, B);
  CS.addAddressOf(A, B);
  CS.addLoad(A, B, 1);
  CS.addLoad(A, B, 1);
  CS.addLoad(A, B, 2); // Different offset: kept.
  EXPECT_EQ(CS.constraints().size(), 4u);
}

TEST(ConstraintSystem, DropsSelfCopies) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a");
  CS.addCopy(A, A);
  EXPECT_TRUE(CS.constraints().empty());
}

TEST(ConstraintSystem, CountKind) {
  ConstraintSystem CS;
  NodeId A = CS.addNode(), B = CS.addNode();
  CS.addAddressOf(A, B);
  CS.addCopy(A, B);
  CS.addCopy(B, A);
  CS.addStore(A, B);
  EXPECT_EQ(CS.countKind(ConstraintKind::AddressOf), 1u);
  EXPECT_EQ(CS.countKind(ConstraintKind::Copy), 2u);
  EXPECT_EQ(CS.countKind(ConstraintKind::Load), 0u);
  EXPECT_EQ(CS.countKind(ConstraintKind::Store), 1u);
}

TEST(ConstraintSystem, SerializeParseRoundTrip) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("alpha");
  NodeId F = CS.addFunction("fun", 1);
  NodeId O = CS.addNode("obj", 2);
  CS.addAddressOf(A, O);
  CS.addCopy(A, F);
  CS.addLoad(A, F, ConstraintSystem::FunctionReturnOffset);
  CS.addStore(F, A, ConstraintSystem::FunctionParamOffset);

  std::string Text = CS.serialize();
  ConstraintSystem Parsed;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::parse(Text, Parsed, Error)) << Error;

  EXPECT_EQ(Parsed.numNodes(), CS.numNodes());
  EXPECT_EQ(Parsed.nameOf(A), "alpha");
  EXPECT_TRUE(Parsed.isFunction(F));
  EXPECT_EQ(Parsed.sizeOf(O), 2u);
  ASSERT_EQ(Parsed.constraints().size(), CS.constraints().size());
  for (size_t I = 0; I != CS.constraints().size(); ++I)
    EXPECT_TRUE(Parsed.constraints()[I] == CS.constraints()[I]) << I;
  // Round-trip is a fixpoint.
  EXPECT_EQ(Parsed.serialize(), Text);
}

TEST(ConstraintSystem, ParseRejectsMalformedInput) {
  ConstraintSystem Out;
  std::string Error;
  EXPECT_FALSE(ConstraintSystem::parse("node 0", Out, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);

  ConstraintSystem Out2;
  EXPECT_FALSE(ConstraintSystem::parse("node 5 1 gap", Out2, Error))
      << "sparse ids must be rejected";

  ConstraintSystem Out3;
  EXPECT_FALSE(ConstraintSystem::parse("node 0 1 a\ncopy 0 7", Out3, Error))
      << "dangling node reference must be rejected";

  ConstraintSystem Out4;
  EXPECT_FALSE(
      ConstraintSystem::parse("node 0 1 a\nfrobnicate 0 0", Out4, Error));
}

TEST(ConstraintSystem, ParseToleratesCommentsAndBlanks) {
  ConstraintSystem Out;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::parse(
      "# header\n\nnode 0 1 a\nnode 1 1 b\n# mid\ncopy 0 1\n", Out, Error))
      << Error;
  EXPECT_EQ(Out.numNodes(), 2u);
  EXPECT_EQ(Out.constraints().size(), 1u);
}

TEST(ConstraintSystem, FileRoundTrip) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b");
  CS.addAddressOf(A, B);
  std::string Path = testing::TempDir() + "/ag_cs_roundtrip.txt";
  ASSERT_TRUE(CS.writeToFile(Path));
  ConstraintSystem Back;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::readFromFile(Path, Back, Error)) << Error;
  EXPECT_EQ(Back.serialize(), CS.serialize());

  ConstraintSystem Missing;
  EXPECT_FALSE(ConstraintSystem::readFromFile("/nonexistent/zz", Missing,
                                              Error));
}

TEST(ConstraintSystem, CloneNodeTable) {
  ConstraintSystem CS;
  CS.addNode("a");
  NodeId F = CS.addFunction("f", 1);
  CS.addCopy(F, 0);
  ConstraintSystem Clone = CS.cloneNodeTable();
  EXPECT_EQ(Clone.numNodes(), CS.numNodes());
  EXPECT_TRUE(Clone.isFunction(F));
  EXPECT_EQ(Clone.nameOf(0), "a");
  EXPECT_TRUE(Clone.constraints().empty());
}

} // namespace
