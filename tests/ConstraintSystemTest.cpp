//===- ConstraintSystemTest.cpp - Tests for the constraint container ------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "constraints/ConstraintSystem.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace ag;

namespace {

TEST(ConstraintSystem, AddNodeAssignsDenseIds) {
  ConstraintSystem CS;
  EXPECT_EQ(CS.addNode("a"), 0u);
  EXPECT_EQ(CS.addNode("b"), 1u);
  EXPECT_EQ(CS.numNodes(), 2u);
  EXPECT_EQ(CS.nameOf(0), "a");
  EXPECT_EQ(CS.sizeOf(0), 1u);
}

TEST(ConstraintSystem, SizedNodesReserveInteriorSlots) {
  ConstraintSystem CS;
  NodeId S = CS.addNode("struct", 3);
  NodeId Next = CS.addNode("after");
  EXPECT_EQ(S, 0u);
  EXPECT_EQ(Next, 3u) << "interior slots occupy ids";
  EXPECT_EQ(CS.sizeOf(S), 3u);
  EXPECT_EQ(CS.sizeOf(S + 1), 1u);
  EXPECT_EQ(CS.offsetTarget(S, 0), S);
  EXPECT_EQ(CS.offsetTarget(S, 2), S + 2);
  EXPECT_EQ(CS.offsetTarget(S, 3), InvalidNode);
  EXPECT_EQ(CS.offsetTarget(Next, 1), InvalidNode);
}

TEST(ConstraintSystem, FunctionLayout) {
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 2);
  EXPECT_TRUE(CS.isFunction(F));
  EXPECT_EQ(CS.sizeOf(F), 4u) << "fun + ret + 2 params";
  EXPECT_EQ(CS.nameOf(F + ConstraintSystem::FunctionReturnOffset), "f.ret");
  EXPECT_EQ(CS.nameOf(F + ConstraintSystem::FunctionParamOffset), "f.arg0");
  EXPECT_EQ(CS.nameOf(F + ConstraintSystem::FunctionParamOffset + 1),
            "f.arg1");
}

TEST(ConstraintSystem, DeduplicatesConstraints) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b");
  CS.addCopy(A, B);
  CS.addCopy(A, B);
  CS.addAddressOf(A, B);
  CS.addAddressOf(A, B);
  CS.addLoad(A, B, 1);
  CS.addLoad(A, B, 1);
  CS.addLoad(A, B, 2); // Different offset: kept.
  EXPECT_EQ(CS.constraints().size(), 4u);
}

TEST(ConstraintSystem, DropsSelfCopies) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a");
  CS.addCopy(A, A);
  EXPECT_TRUE(CS.constraints().empty());
}

TEST(ConstraintSystem, CountKind) {
  ConstraintSystem CS;
  NodeId A = CS.addNode(), B = CS.addNode();
  CS.addAddressOf(A, B);
  CS.addCopy(A, B);
  CS.addCopy(B, A);
  CS.addStore(A, B);
  EXPECT_EQ(CS.countKind(ConstraintKind::AddressOf), 1u);
  EXPECT_EQ(CS.countKind(ConstraintKind::Copy), 2u);
  EXPECT_EQ(CS.countKind(ConstraintKind::Load), 0u);
  EXPECT_EQ(CS.countKind(ConstraintKind::Store), 1u);
}

TEST(ConstraintSystem, SerializeParseRoundTrip) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("alpha");
  NodeId F = CS.addFunction("fun", 1);
  NodeId O = CS.addNode("obj", 2);
  CS.addAddressOf(A, O);
  CS.addCopy(A, F);
  CS.addLoad(A, F, ConstraintSystem::FunctionReturnOffset);
  CS.addStore(F, A, ConstraintSystem::FunctionParamOffset);

  std::string Text = CS.serialize();
  ConstraintSystem Parsed;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::parse(Text, Parsed, Error)) << Error;

  EXPECT_EQ(Parsed.numNodes(), CS.numNodes());
  EXPECT_EQ(Parsed.nameOf(A), "alpha");
  EXPECT_TRUE(Parsed.isFunction(F));
  EXPECT_EQ(Parsed.sizeOf(O), 2u);
  ASSERT_EQ(Parsed.constraints().size(), CS.constraints().size());
  for (size_t I = 0; I != CS.constraints().size(); ++I)
    EXPECT_TRUE(Parsed.constraints()[I] == CS.constraints()[I]) << I;
  // Round-trip is a fixpoint.
  EXPECT_EQ(Parsed.serialize(), Text);
}

TEST(ConstraintSystem, ParseRejectsMalformedInput) {
  ConstraintSystem Out;
  std::string Error;
  EXPECT_FALSE(ConstraintSystem::parse("node 0", Out, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);

  ConstraintSystem Out2;
  EXPECT_FALSE(ConstraintSystem::parse("node 5 1 gap", Out2, Error))
      << "sparse ids must be rejected";

  ConstraintSystem Out3;
  EXPECT_FALSE(ConstraintSystem::parse("node 0 1 a\ncopy 0 7", Out3, Error))
      << "dangling node reference must be rejected";

  ConstraintSystem Out4;
  EXPECT_FALSE(
      ConstraintSystem::parse("node 0 1 a\nfrobnicate 0 0", Out4, Error));
}

TEST(ConstraintSystem, ParseTextReportsStructuredStatus) {
  ConstraintSystem Out;
  Status St = ConstraintSystem::parseText("node 0 1 a\ncopy 0 7", Out);
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::ParseError);
  EXPECT_NE(St.message().find("line 2"), std::string::npos);

  ConstraintSystem Ok;
  EXPECT_TRUE(ConstraintSystem::parseText("node 0 1 a", Ok).ok());
}

// Untrusted-input hardening: every malformed record yields a clean
// ParseError, never an assert, an out-of-range write, or UB in the
// constraint dedup key (ASan/UBSan in CI back this up).
TEST(ConstraintSystem, ParseRejectsHostileInputsCleanly) {
  struct Case {
    const char *Name;
    const char *Text;
  } Cases[] = {
      {"truncated node record", "node 0"},
      {"truncated constraint", "node 0 1 a\ncopy 0"},
      {"zero node size", "node 0 0 a"},
      {"oversized node", "node 0 999999999 a"},
      {"node count overflowing capacity", "numnodes 99999999999"},
      {"sparse giant node id", "node 0 1 a\nnode 8388607 1 z"},
      {"out-of-range constraint dst", "node 0 1 a\ncopy 4294967295 0"},
      {"out-of-range constraint src", "node 0 1 a\naddr 0 18446744073709551615"},
      {"offset exceeding dedup-key capacity",
       "node 0 4 a\nnode 4 1 b\nload 4 0 65536"},
      {"fun on unknown node", "node 0 1 a\nfun 3"},
      {"negative-looking id", "node 0 1 a\ncopy -1 0"},
  };
  for (const Case &C : Cases) {
    ConstraintSystem Out;
    Status St = ConstraintSystem::parseText(C.Text, Out);
    EXPECT_FALSE(St.ok()) << C.Name;
    EXPECT_EQ(St.code(), StatusCode::ParseError) << C.Name;
  }
}

TEST(ConstraintSystem, ParseAcceptsBoundaryOffsets) {
  // MaxOffset itself must round-trip; only MaxOffset+1 is rejected.
  ConstraintSystem Out;
  std::string Text = "node 0 65536 big\nnode 65536 1 p\nload 65536 0 65535\n";
  Status St = ConstraintSystem::parseText(Text, Out);
  EXPECT_TRUE(St.ok()) << St.toString();
  EXPECT_EQ(Out.countKind(ConstraintKind::Load), 1u);
}

TEST(ConstraintSystem, ParseDeduplicatesHostileRepeats) {
  // Duplicate constraints (including duplicated offsets) collapse to one;
  // a flood of repeats must not blow up the constraint vector.
  std::string Text = "node 0 4 a\nnode 4 1 p\n";
  for (int I = 0; I != 100; ++I)
    Text += "load 4 0 2\n";
  ConstraintSystem Out;
  ASSERT_TRUE(ConstraintSystem::parseText(Text, Out).ok());
  EXPECT_EQ(Out.constraints().size(), 1u);
}

TEST(ConstraintSystem, LoadFromFileStatusPaths) {
  ConstraintSystem Unused;
  Status Missing =
      ConstraintSystem::loadFromFile("/nonexistent/zz.cons", Unused);
  EXPECT_EQ(Missing.code(), StatusCode::IoError);

  std::string Path = testing::TempDir() + "/ag_cs_bad.cons";
  std::ofstream(Path) << "node 0 1 a\ncopy 0 9\n";
  ConstraintSystem Out;
  Status St = ConstraintSystem::loadFromFile(Path, Out);
  EXPECT_EQ(St.code(), StatusCode::ParseError);
  // The file path is part of the diagnostic.
  EXPECT_NE(St.message().find(Path), std::string::npos);
}

TEST(ConstraintSystem, ParseToleratesCommentsAndBlanks) {
  ConstraintSystem Out;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::parse(
      "# header\n\nnode 0 1 a\nnode 1 1 b\n# mid\ncopy 0 1\n", Out, Error))
      << Error;
  EXPECT_EQ(Out.numNodes(), 2u);
  EXPECT_EQ(Out.constraints().size(), 1u);
}

TEST(ConstraintSystem, FileRoundTrip) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b");
  CS.addAddressOf(A, B);
  std::string Path = testing::TempDir() + "/ag_cs_roundtrip.txt";
  ASSERT_TRUE(CS.writeToFile(Path));
  ConstraintSystem Back;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::readFromFile(Path, Back, Error)) << Error;
  EXPECT_EQ(Back.serialize(), CS.serialize());

  ConstraintSystem Missing;
  EXPECT_FALSE(ConstraintSystem::readFromFile("/nonexistent/zz", Missing,
                                              Error));
}

TEST(ConstraintSystem, CloneNodeTable) {
  ConstraintSystem CS;
  CS.addNode("a");
  NodeId F = CS.addFunction("f", 1);
  CS.addCopy(F, 0);
  ConstraintSystem Clone = CS.cloneNodeTable();
  EXPECT_EQ(Clone.numNodes(), CS.numNodes());
  EXPECT_TRUE(Clone.isFunction(F));
  EXPECT_EQ(Clone.nameOf(0), "a");
  EXPECT_TRUE(Clone.constraints().empty());
}

} // namespace
