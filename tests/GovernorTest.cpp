//===- GovernorTest.cpp - Resource-governed solving tests -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves every solver kind honors the SolveBudget contract: deadline,
/// memory-cap, step and edge ceilings, cooperative cancellation, and fault
/// injection all abort the precise solve cleanly, and the Steensgaard
/// fallback solution is a superset of the untripped precise solution. Also
/// covers the ptatool driver's documented exit codes end to end.
///
//===----------------------------------------------------------------------===//

#include "solvers/Solve.h"

#include "adt/FaultInjector.h"
#include "adt/Status.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

using namespace ag;

namespace {

ConstraintSystem testSystem() {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  return generateBenchmark(Spec);
}

/// A budget whose step ceiling trips almost immediately on any non-trivial
/// system, with per-operation checking so the trip point is deterministic.
SolveBudget tightStepBudget() {
  SolveBudget B;
  B.MaxPropagations = 1;
  B.CheckIntervalOps = 1;
  return B;
}

void expectSuperset(const PointsToSolution &Big, const PointsToSolution &Small,
                    uint32_t NumNodes) {
  for (NodeId V = 0; V != NumNodes; ++V)
    EXPECT_TRUE(Big.pointsTo(V).contains(Small.pointsTo(V)))
        << "node " << V << " lost points-to members in the fallback";
}

class GovernedSolve : public ::testing::TestWithParam<SolverKind> {
protected:
  void TearDown() override { FaultInjector::instance().disarmAll(); }
};

TEST_P(GovernedSolve, DefaultBudgetSolvesPrecisely) {
  ConstraintSystem CS = testSystem();
  PointsToSolution Ungoverned = solve(CS, GetParam());
  SolveResult R = solveGoverned(CS, GetParam());
  ASSERT_EQ(R.Outcome, SolveOutcome::Precise);
  EXPECT_TRUE(R.Sound);
  EXPECT_TRUE(R.St.ok());
  EXPECT_FALSE(R.usedFallback());
  EXPECT_EQ(R.Solution.hash(), Ungoverned.hash());
}

TEST_P(GovernedSolve, StepBudgetTripsToFallbackSuperset) {
  ConstraintSystem CS = testSystem();
  PointsToSolution Precise = solve(CS, GetParam());
  SolveResult R = solveGoverned(CS, GetParam(), tightStepBudget());
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_TRUE(R.Sound);
  EXPECT_TRUE(R.usedFallback());
  ASSERT_TRUE(R.St.isBudgetTrip());
  EXPECT_EQ(R.St.code(), StatusCode::StepLimit);
  expectSuperset(R.Solution, Precise, CS.numNodes());
}

TEST_P(GovernedSolve, FallbackComposesSeedRepresentatives) {
  // The production path (ptatool) seeds solvers with OVS representatives;
  // the fallback must fold those classes back in or substituted variables
  // would come back with empty sets.
  ConstraintSystem CS = testSystem();
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  PointsToSolution Precise = solve(Ovs.Reduced, GetParam(), PtsRepr::Bitmap,
                                   nullptr, SolverOptions(), &Ovs.Rep);
  SolveResult R =
      solveGoverned(Ovs.Reduced, GetParam(), tightStepBudget(),
                    PtsRepr::Bitmap, nullptr, SolverOptions(), &Ovs.Rep);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  expectSuperset(R.Solution, Precise, Ovs.Reduced.numNodes());
}

TEST_P(GovernedSolve, ExpiredDeadlineTripsBeforeRealWork) {
  ConstraintSystem CS = testSystem();
  SolveBudget B;
  B.TimeoutSeconds = 1e-9; // Expired by the governor's first check.
  SolveResult R = solveGoverned(CS, GetParam(), B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::DeadlineExceeded);
  EXPECT_TRUE(R.Sound);
}

TEST_P(GovernedSolve, MemoryCapTrips) {
  ConstraintSystem CS = testSystem();
  SolveBudget B;
  B.MaxMemoryBytes = 1; // Any live tracked allocation exceeds this.
  B.CheckIntervalOps = 1;
  SolveResult R = solveGoverned(CS, GetParam(), B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::MemoryLimit);
}

TEST_P(GovernedSolve, EdgeBudgetTrips) {
  SolverKind Kind = GetParam();
  if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD)
    GTEST_SKIP() << "BLQ keeps edges as one BDD relation (documented)";
  ConstraintSystem CS = testSystem();
  SolveBudget B;
  B.MaxEdges = 1;
  B.CheckIntervalOps = 1;
  SolveResult R = solveGoverned(CS, Kind, B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::StepLimit);
}

TEST_P(GovernedSolve, NoFallbackYieldsUnsoundPartial) {
  ConstraintSystem CS = testSystem();
  SolveBudget B = tightStepBudget();
  B.AllowFallback = false;
  SolveResult R = solveGoverned(CS, GetParam(), B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Partial);
  EXPECT_FALSE(R.Sound);
  EXPECT_FALSE(R.usedFallback());
  EXPECT_TRUE(R.St.isBudgetTrip());
}

TEST_P(GovernedSolve, PreCancelledTokenAborts) {
  ConstraintSystem CS = testSystem();
  SolveBudget B;
  B.Cancel = CancelToken::create();
  B.Cancel.requestCancel();
  SolveResult R = solveGoverned(CS, GetParam(), B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::Cancelled);
}

TEST_P(GovernedSolve, GovernorCheckFaultInjection) {
  ConstraintSystem CS = testSystem();
  FaultInjector::instance().armAfter(FaultSite::GovernorCheck,
                                     /*Countdown=*/0);
  SolveBudget B;
  B.CheckIntervalOps = 1;
  SolveResult R = solveGoverned(CS, GetParam(), B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::FaultInjected);
}

TEST_P(GovernedSolve, AllocationFaultLatchesIntoCleanTrip) {
  ConstraintSystem CS = testSystem();
  FaultInjector::instance().armAfter(FaultSite::Allocation, /*Countdown=*/0);
  SolveBudget B;
  B.CheckIntervalOps = 1;
  SolveResult R = solveGoverned(CS, GetParam(), B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::MemoryLimit);
  EXPECT_NE(R.St.message().find("injected"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GovernedSolve,
    ::testing::Values(SolverKind::Naive, SolverKind::HT, SolverKind::PKH,
                      SolverKind::BLQ, SolverKind::LCD, SolverKind::HCD,
                      SolverKind::HTHCD, SolverKind::PKHHCD,
                      SolverKind::BLQHCD, SolverKind::LCDHCD),
    [](const ::testing::TestParamInfo<SolverKind> &Info) {
      std::string Name = solverKindName(Info.param);
      for (char &C : Name)
        if (C == '+')
          C = '_';
      return Name;
    });

TEST(GovernedSolveErrors, InvalidKindIsAStructuredFailure) {
  ConstraintSystem CS = testSystem();
  SolverKind Bogus = static_cast<SolverKind>(99);
  EXPECT_FALSE(isValidSolverKind(Bogus));
  EXPECT_STREQ(solverKindName(Bogus), "?");
  SolveResult R = solveGoverned(CS, Bogus);
  EXPECT_EQ(R.Outcome, SolveOutcome::Failed);
  EXPECT_FALSE(R.Sound);
  EXPECT_EQ(R.St.code(), StatusCode::InvalidArgument);
}

TEST(GovernedSolveErrors, MisSizedSeedTableIsAStructuredFailure) {
  ConstraintSystem CS = testSystem();
  std::vector<NodeId> BadSeeds(3, 0); // Wrong length for this system.
  SolveResult R = solveGoverned(CS, SolverKind::LCDHCD, SolveBudget(),
                                PtsRepr::Bitmap, nullptr, SolverOptions(),
                                &BadSeeds);
  EXPECT_EQ(R.Outcome, SolveOutcome::Failed);
  EXPECT_EQ(R.St.code(), StatusCode::InvalidArgument);
}

TEST(GovernedSolveErrors, MidSolveCancellationFromToken) {
  // Cancel after the solve has already started: arm a countdown fault on
  // the governor check to prove checks keep happening, then rely on the
  // token read at the same checkpoint. Simpler: request cancel from a
  // token shared with the budget before the first checkpoint fires.
  ConstraintSystem CS = testSystem();
  CancelToken Token = CancelToken::create();
  SolveBudget B;
  B.Cancel = Token;
  B.CheckIntervalOps = 1;
  Token.requestCancel();
  SolveResult R = solveGoverned(CS, SolverKind::PKH, B);
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::Cancelled);
}

#ifdef AG_PTATOOL_PATH

/// Runs ptatool with \p Args and returns its exit code.
int runPtatool(const std::string &Args) {
  std::string Cmd = std::string(AG_PTATOOL_PATH) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Raw = std::system(Cmd.c_str());
  return WEXITSTATUS(Raw);
}

class PtatoolExitCodes : public ::testing::Test {
protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, and
    // a shared path would race (one process rewriting while another's
    // ptatool child reads a truncated file).
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    ConsPath = ::testing::TempDir() + "governor_tool_" +
               std::string(Info->name()) + ".cons";
    ConstraintSystem CS = testSystem();
    ASSERT_TRUE(CS.writeToFile(ConsPath));
  }
  std::string ConsPath;
};

TEST_F(PtatoolExitCodes, PreciseSolveExitsZero) {
  EXPECT_EQ(runPtatool("solve " + ConsPath + " PKH"), 0);
}

TEST_F(PtatoolExitCodes, TimeoutExitsFallbackCode) {
  EXPECT_EQ(runPtatool("solve " + ConsPath + " PKH --timeout 1e-9"), 3);
}

TEST_F(PtatoolExitCodes, TimeoutNoFallbackExitsPartialCode) {
  EXPECT_EQ(
      runPtatool("solve " + ConsPath + " PKH --timeout 1e-9 --no-fallback"),
      4);
}

TEST_F(PtatoolExitCodes, MaxStepsTripsEveryAlgorithm) {
  for (SolverKind K : AllSolverKinds)
    EXPECT_EQ(runPtatool("solve " + ConsPath + " " +
                         std::string(solverKindName(K)) + " --max-steps 1"),
              3)
        << solverKindName(K);
}

TEST_F(PtatoolExitCodes, MissingFileExitsError) {
  EXPECT_EQ(runPtatool("solve /nonexistent/missing.cons"), 1);
}

TEST_F(PtatoolExitCodes, MalformedFileExitsError) {
  std::string Bad = ::testing::TempDir() + "governor_tool_malformed.cons";
  std::ofstream(Bad) << "node 0 1 p\ncopy 0 7\n";
  EXPECT_EQ(runPtatool("solve " + Bad), 1);
}

TEST_F(PtatoolExitCodes, UnknownFlagExitsUsage) {
  EXPECT_EQ(runPtatool("solve " + ConsPath + " --frobnicate"), 2);
}

TEST_F(PtatoolExitCodes, BadBudgetValueExitsUsage) {
  EXPECT_EQ(runPtatool("solve " + ConsPath + " --timeout banana"), 2);
  EXPECT_EQ(runPtatool("solve " + ConsPath + " --timeout -1"), 2);
  EXPECT_EQ(runPtatool("solve " + ConsPath + " --max-mem-mb 0"), 2);
  EXPECT_EQ(runPtatool("solve " + ConsPath + " --max-steps"), 2);
}

TEST_F(PtatoolExitCodes, GenRejectsBadScale) {
  std::string Dir = ::testing::TempDir();
  EXPECT_EQ(runPtatool("gen " + Dir + " nan"), 1);
  EXPECT_EQ(runPtatool("gen " + Dir + " 0"), 1);
  EXPECT_EQ(runPtatool("gen " + Dir + " -2"), 1);
  EXPECT_EQ(runPtatool("gen " + Dir + " 1e30"), 1);
  EXPECT_EQ(runPtatool("gen " + Dir + " 0.5x"), 1);
}

#endif // AG_PTATOOL_PATH

} // namespace
