//===- IncrementalSolverTest.cpp - Warm-start re-solving tests ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warm-start contract: re-solving a snapshot plus a constraint delta
/// equals a cold solve of the full system seeded with the snapshot's
/// offline map (see IncrementalSolver.h for why that is the exact
/// baseline) — at every thread count, across generated suites, under
/// repeated folded deltas, and byte-for-byte under budget trips. Plus the
/// structured-error paths: invalid deltas, mismatched node tables, and
/// non-precise snapshots.
///
//===----------------------------------------------------------------------===//

#include "serve/IncrementalSolver.h"

#include "constraints/OfflineVariableSubstitution.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ag;

namespace {

Snapshot makeSnapshot(const ConstraintSystem &CS,
                      SolverKind Kind = SolverKind::LCDHCD) {
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution = solve(Ovs.Reduced, Kind, PtsRepr::Bitmap, nullptr,
                        SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  Snap.Kind = Kind;
  return Snap;
}

ConstraintSystem suiteSystem(uint64_t Seed) {
  BenchmarkSpec Spec;
  Spec.Seed = Seed;
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 24;
  return generateBenchmark(Spec);
}

/// The cold baseline the warm solve must match: the snapshot's (reduced)
/// system plus the delta, added in the same order, solved from scratch
/// seeded with the snapshot's offline map.
ConstraintSystem fullSystem(const Snapshot &Snap,
                            const std::vector<Constraint> &Delta) {
  ConstraintSystem Full = Snap.CS;
  for (const Constraint &C : Delta)
    Full.add(C);
  return Full;
}

SolveBudget expiredDeadline() {
  SolveBudget B;
  B.TimeoutSeconds = 1e-9;
  B.CheckIntervalOps = 1;
  return B;
}

class WarmStart : public ::testing::TestWithParam<unsigned> {
protected:
  SolverOptions opts() const {
    SolverOptions O;
    O.Threads = GetParam();
    return O;
  }
};

TEST_P(WarmStart, EqualsColdSolveOfFullSystem) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    ConstraintSystem Full = suiteSystem(Seed);
    DeltaSplit Split = splitDelta(Full, 0.15, Seed * 17 + 1);
    Snapshot Snap = makeSnapshot(Split.Base);
    ConstraintSystem FullCS = fullSystem(Snap, Split.Delta);
    std::vector<NodeId> Seeds = Snap.SeedReps;
    PointsToSolution Cold = solve(FullCS, SolverKind::LCDHCD, PtsRepr::Bitmap,
                                  nullptr, opts(), &Seeds);

    IncrementalSolver Inc(std::move(Snap));
    ASSERT_TRUE(Inc.valid().ok());
    WarmStartResult R = Inc.resolve(Split.Delta, SolveBudget(), opts());
    ASSERT_EQ(R.Outcome, SolveOutcome::Precise) << R.St.toString();
    EXPECT_TRUE(R.Sound);
    EXPECT_TRUE(R.St.ok());
    EXPECT_GT(R.NewConstraints, 0u);
    EXPECT_GT(R.SeededNodes, 0u);
    EXPECT_TRUE(R.Solution == Cold) << "seed " << Seed;
    EXPECT_EQ(R.Solution.hash(), Cold.hash());

    // Precise results fold: the held snapshot now covers the full system.
    EXPECT_TRUE(Inc.solution() == Cold);
    EXPECT_EQ(Inc.system().constraints().size(), FullCS.constraints().size());
  }
}

TEST_P(WarmStart, RepeatedDeltasCompose) {
  ConstraintSystem Full = suiteSystem(5);
  DeltaSplit Split = splitDelta(Full, 0.2, 99);
  size_t Half = Split.Delta.size() / 2;
  std::vector<Constraint> First(Split.Delta.begin(),
                                Split.Delta.begin() + Half);
  std::vector<Constraint> Second(Split.Delta.begin() + Half,
                                 Split.Delta.end());
  ASSERT_FALSE(First.empty());
  ASSERT_FALSE(Second.empty());

  Snapshot Snap = makeSnapshot(Split.Base);
  ConstraintSystem FullCS = fullSystem(Snap, Split.Delta);
  std::vector<NodeId> Seeds = Snap.SeedReps;
  PointsToSolution Cold = solve(FullCS, SolverKind::LCDHCD, PtsRepr::Bitmap,
                                nullptr, opts(), &Seeds);

  IncrementalSolver Inc(std::move(Snap));
  ASSERT_EQ(Inc.resolve(First, SolveBudget(), opts()).Outcome,
            SolveOutcome::Precise);
  WarmStartResult R = Inc.resolve(Second, SolveBudget(), opts());
  ASSERT_EQ(R.Outcome, SolveOutcome::Precise);
  EXPECT_TRUE(R.Solution == Cold);
  EXPECT_TRUE(Inc.solution() == Cold);
}

TEST_P(WarmStart, BudgetTripFallsBackExactlyLikeColdSolve) {
  ConstraintSystem Full = suiteSystem(7);
  DeltaSplit Split = splitDelta(Full, 0.2, 7);
  Snapshot Snap = makeSnapshot(Split.Base);
  ConstraintSystem FullCS = fullSystem(Snap, Split.Delta);
  std::vector<NodeId> Seeds = Snap.SeedReps;
  PointsToSolution BaseSolution = Snap.Solution;

  SolveResult Cold =
      solveGoverned(FullCS, SolverKind::LCDHCD, expiredDeadline(),
                    PtsRepr::Bitmap, nullptr, opts(), &Seeds);
  ASSERT_EQ(Cold.Outcome, SolveOutcome::Fallback);

  IncrementalSolver Inc(std::move(Snap));
  WarmStartResult R = Inc.resolve(Split.Delta, expiredDeadline(), opts());
  ASSERT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_TRUE(R.Sound);
  EXPECT_TRUE(R.St.isBudgetTrip());
  EXPECT_TRUE(R.Solution == Cold.Solution)
      << "tripped warm and tripped cold must degrade identically";

  // Fallback results are not fixpoints and must NOT fold into the held
  // snapshot; the same delta re-solved with a real budget is precise.
  EXPECT_TRUE(Inc.solution() == BaseSolution);
  WarmStartResult Retry = Inc.resolve(Split.Delta, SolveBudget(), opts());
  ASSERT_EQ(Retry.Outcome, SolveOutcome::Precise);
  PointsToSolution Precise =
      solve(FullCS, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr, opts(),
            &Seeds);
  EXPECT_TRUE(Retry.Solution == Precise);
}

TEST_P(WarmStart, NoFallbackYieldsUnsoundPartial) {
  ConstraintSystem Full = suiteSystem(9);
  DeltaSplit Split = splitDelta(Full, 0.2, 9);
  Snapshot Snap = makeSnapshot(Split.Base);
  PointsToSolution BaseSolution = Snap.Solution;
  IncrementalSolver Inc(std::move(Snap));
  SolveBudget B = expiredDeadline();
  B.AllowFallback = false;
  WarmStartResult R = Inc.resolve(Split.Delta, B, opts());
  ASSERT_EQ(R.Outcome, SolveOutcome::Partial);
  EXPECT_FALSE(R.Sound);
  EXPECT_TRUE(R.St.isBudgetTrip());
  EXPECT_TRUE(Inc.solution() == BaseSolution) << "partial must not fold";
}

INSTANTIATE_TEST_SUITE_P(Threads, WarmStart, ::testing::Values(0u, 1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "Threads" + std::to_string(Info.param);
                         });

TEST(IncrementalSolver, EmptyDeltaFastPath) {
  Snapshot Snap = makeSnapshot(suiteSystem(11));
  PointsToSolution Base = Snap.Solution;
  IncrementalSolver Inc(std::move(Snap));
  WarmStartResult R = Inc.resolve({});
  ASSERT_EQ(R.Outcome, SolveOutcome::Precise);
  EXPECT_EQ(R.NewConstraints, 0u);
  EXPECT_EQ(R.SeededNodes, 0u);
  EXPECT_TRUE(R.Solution == Base);
}

TEST(IncrementalSolver, DuplicateDeltaIsANoOp) {
  ConstraintSystem Full = suiteSystem(13);
  Snapshot Snap = makeSnapshot(Full);
  PointsToSolution Base = Snap.Solution;
  // Re-submit constraints the base already has (post-OVS form, so they
  // dedup against the snapshot's system).
  std::vector<Constraint> Dup(Snap.CS.constraints().begin(),
                              Snap.CS.constraints().begin() + 10);
  IncrementalSolver Inc(std::move(Snap));
  WarmStartResult R = Inc.resolve(Dup);
  ASSERT_EQ(R.Outcome, SolveOutcome::Precise);
  EXPECT_EQ(R.NewConstraints, 0u);
  EXPECT_TRUE(R.Solution == Base);
}

TEST(IncrementalSolver, InvalidDeltaIsAStructuredFailure) {
  Snapshot Snap = makeSnapshot(suiteSystem(15));
  NodeId Bad = Snap.CS.numNodes();
  IncrementalSolver Inc(std::move(Snap));
  WarmStartResult R =
      Inc.resolve({Constraint(ConstraintKind::Copy, Bad, 0)});
  EXPECT_EQ(R.Outcome, SolveOutcome::Failed);
  EXPECT_EQ(R.St.code(), StatusCode::InvalidArgument);
  EXPECT_FALSE(R.Sound);
}

TEST(IncrementalSolver, AddNodeExtendsTheSystem) {
  Snapshot Snap = makeSnapshot(suiteSystem(17));
  std::vector<NodeId> Seeds = Snap.SeedReps;
  IncrementalSolver Inc(std::move(Snap));
  NodeId P = Inc.addNode("fresh_ptr");
  NodeId O = Inc.addNode("fresh_obj");
  std::vector<Constraint> Delta = {
      Constraint(ConstraintKind::AddressOf, P, O),
      Constraint(ConstraintKind::Copy, 0, P)};
  WarmStartResult R = Inc.resolve(Delta);
  ASSERT_EQ(R.Outcome, SolveOutcome::Precise) << R.St.toString();
  EXPECT_TRUE(R.Solution.pointsToObj(P, O));
  EXPECT_TRUE(R.Solution.pointsToObj(0, O));

  // Cold baseline over the extended system: identity seeds for new ids.
  for (NodeId V = static_cast<NodeId>(Seeds.size());
       V != Inc.system().numNodes(); ++V)
    Seeds.push_back(V);
  PointsToSolution Cold = solve(Inc.system(), SolverKind::LCDHCD,
                                PtsRepr::Bitmap, nullptr, SolverOptions(),
                                &Seeds);
  EXPECT_TRUE(R.Solution == Cold);
}

TEST(IncrementalSolver, ResolveSystemAdoptsExtendedNodeTable) {
  ConstraintSystem Base;
  NodeId F = Base.addFunction("f", 2);
  NodeId P = Base.addNode("p");
  NodeId O = Base.addNode("o", 2);
  Base.addAddressOf(P, O);
  Snapshot Snap = makeSnapshot(Base);
  std::vector<NodeId> Seeds = Snap.SeedReps;
  IncrementalSolver Inc(std::move(Snap));

  // The delta file: same table, plus a new function and a new pointer
  // that targets both functions.
  ConstraintSystem DeltaCS = Base.cloneNodeTable();
  NodeId G = DeltaCS.addFunction("g", 1);
  NodeId Fp = DeltaCS.addNode("fp");
  DeltaCS.addAddressOf(Fp, F);
  DeltaCS.addAddressOf(Fp, G);
  WarmStartResult R = Inc.resolveSystem(DeltaCS);
  ASSERT_EQ(R.Outcome, SolveOutcome::Precise) << R.St.toString();

  const ConstraintSystem &Cur = Inc.system();
  ASSERT_EQ(Cur.numNodes(), DeltaCS.numNodes());
  EXPECT_TRUE(Cur.isFunction(G));
  EXPECT_EQ(Cur.nameOf(G), "g");
  EXPECT_EQ(Cur.nameOf(Fp), "fp");
  EXPECT_EQ(Cur.sizeOf(G), DeltaCS.sizeOf(G));
  EXPECT_TRUE(R.Solution.pointsToObj(Fp, F));
  EXPECT_TRUE(R.Solution.pointsToObj(Fp, G));

  for (NodeId V = static_cast<NodeId>(Seeds.size()); V != Cur.numNodes(); ++V)
    Seeds.push_back(V);
  PointsToSolution Cold = solve(Cur, SolverKind::LCDHCD, PtsRepr::Bitmap,
                                nullptr, SolverOptions(), &Seeds);
  EXPECT_TRUE(R.Solution == Cold);
}

TEST(IncrementalSolver, ResolveSystemRejectsMismatchedTables) {
  ConstraintSystem Base;
  Base.addNode("p");
  Base.addNode("o", 2);
  Snapshot Snap = makeSnapshot(Base);
  IncrementalSolver Inc(std::move(Snap));

  ConstraintSystem Shrunk; // Fewer nodes than the snapshot.
  Shrunk.addNode("p");
  WarmStartResult R1 = Inc.resolveSystem(Shrunk);
  EXPECT_EQ(R1.Outcome, SolveOutcome::Failed);
  EXPECT_EQ(R1.St.code(), StatusCode::InvalidArgument);

  ConstraintSystem WrongSize; // Same count, different node shape.
  WrongSize.addNode("p", 3);
  WrongSize.addNode("o");
  WrongSize.addNode("x");
  WarmStartResult R2 = Inc.resolveSystem(WrongSize);
  EXPECT_EQ(R2.Outcome, SolveOutcome::Failed);
  EXPECT_EQ(R2.St.code(), StatusCode::InvalidArgument);
}

TEST(IncrementalSolver, NonPreciseSnapshotsAreRejected) {
  Snapshot Snap = makeSnapshot(suiteSystem(19));
  Snap.Outcome = SolveOutcome::Fallback;
  IncrementalSolver Inc(std::move(Snap));
  EXPECT_FALSE(Inc.valid().ok());
  EXPECT_EQ(Inc.valid().code(), StatusCode::InvalidArgument);
  WarmStartResult R = Inc.resolve({});
  EXPECT_EQ(R.Outcome, SolveOutcome::Failed);
}

} // namespace
