//===- LruCacheShardTest.cpp - Concurrent shard eviction ------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrent eviction stress for ShardedLruCache: writers overflowing
/// every shard while readers probe, under TSan in CI. Checks the
/// structural invariants eviction must preserve — size never exceeds
/// capacity, survivors read back exactly, eviction counters add up —
/// without assuming any cross-thread interleaving.
///
//===----------------------------------------------------------------------===//

#include "adt/LruCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace ag;

namespace {

TEST(LruCacheShard, EvictsWhenShardOverflows) {
  // Capacity 8 over 4 shards = 2 entries per shard; 64 inserts must
  // evict, and the survivors are exactly readable.
  ShardedLruCache<uint64_t, std::string> Cache(/*Capacity=*/8, /*NumShards=*/4);
  for (uint64_t K = 0; K != 64; ++K)
    Cache.put(K, "v" + std::to_string(K));
  EXPECT_LE(Cache.size(), 8u);
  CacheStats S = Cache.stats();
  EXPECT_GE(S.Evictions, 64u - 8u);
  unsigned Survivors = 0;
  for (uint64_t K = 0; K != 64; ++K) {
    if (std::optional<std::string> V = Cache.get(K)) {
      EXPECT_EQ(*V, "v" + std::to_string(K));
      ++Survivors;
    }
  }
  EXPECT_EQ(Survivors, Cache.size());
}

TEST(LruCacheShard, LruOrderWithinShard) {
  // One shard makes recency order observable: touching the oldest key
  // must redirect eviction to the next-oldest.
  ShardedLruCache<uint64_t, int> Cache(/*Capacity=*/3, /*NumShards=*/1);
  Cache.put(1, 10);
  Cache.put(2, 20);
  Cache.put(3, 30);
  ASSERT_TRUE(Cache.get(1).has_value()); // 2 is now least-recently used.
  Cache.put(4, 40);
  EXPECT_TRUE(Cache.get(1).has_value());
  EXPECT_FALSE(Cache.get(2).has_value());
  EXPECT_TRUE(Cache.get(3).has_value());
  EXPECT_TRUE(Cache.get(4).has_value());
}

TEST(LruCacheShard, ZeroCapacityDisablesWithoutCrashing) {
  ShardedLruCache<uint64_t, int> Cache(/*Capacity=*/0, /*NumShards=*/4);
  Cache.put(1, 10);
  EXPECT_FALSE(Cache.get(1).has_value());
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(LruCacheShard, ConcurrentEvictionUnderPressure) {
  // Tiny capacity + many writers keeps every shard evicting for the
  // whole run while readers race the same key range. The assertions
  // are invariants, not interleavings: values are self-describing
  // (value == key * 3 + 1), so any successful read must be coherent,
  // and the final size respects capacity.
  constexpr unsigned Writers = 4;
  constexpr unsigned Readers = 4;
  constexpr uint64_t KeysPerWriter = 4000;
  ShardedLruCache<uint64_t, uint64_t> Cache(/*Capacity=*/64, /*NumShards=*/8);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> TornReads{0};

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != Writers; ++W)
    Threads.emplace_back([&, W] {
      for (uint64_t I = 0; I != KeysPerWriter; ++I) {
        uint64_t K = W * KeysPerWriter + I;
        Cache.put(K, K * 3 + 1);
        // Re-put a shared hot key from every writer: same key, same
        // value, hammering one shard's list head.
        Cache.put(7, 7 * 3 + 1);
      }
    });
  for (unsigned R = 0; R != Readers; ++R)
    Threads.emplace_back([&, R] {
      uint64_t K = R;
      while (!Stop.load(std::memory_order_relaxed)) {
        if (std::optional<uint64_t> V = Cache.get(K))
          if (*V != K * 3 + 1)
            TornReads.fetch_add(1, std::memory_order_relaxed);
        K = (K + 13) % (Writers * KeysPerWriter);
      }
    });

  for (unsigned W = 0; W != Writers; ++W)
    Threads[W].join();
  Stop.store(true, std::memory_order_relaxed);
  for (unsigned R = Writers; R != Threads.size(); ++R)
    Threads[R].join();

  EXPECT_EQ(TornReads.load(), 0u);
  EXPECT_LE(Cache.size(), 64u);
  CacheStats S = Cache.stats();
  EXPECT_GE(S.Evictions, Writers * KeysPerWriter - 64);

  // The cache still functions after the storm.
  Cache.put(999999, 42);
  std::optional<uint64_t> V = Cache.get(999999);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 42u);

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
}

} // namespace
