//===- DemandTest.cpp - Demand-driven points-to subsystem -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential certification of the demand-driven subsystem: every
/// DemandSolver answer bit-equal to the exhaustive solution of every
/// solver kind (sequential and parallel), tier escalation on budget
/// trips (sound fallback preserved, unsound partial state never served),
/// delta adoption with memo invalidation, the QueryEngine memo tier, the
/// governed reverse-index build, demand-mode serving sessions, and the
/// `ptatool query` exit codes end to end.
///
//===----------------------------------------------------------------------===//

#include "demand/DemandSolver.h"
#include "demand/DemandTier.h"

#include "adt/Rng.h"
#include "check/Differential.h"
#include "core/SolveBudget.h"
#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"
#include "serve/QueryEngine.h"
#include "serve/ServeSession.h"
#include "serve/Snapshot.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ag;

namespace {

/// The CheckTest benchmark shape (program-structured, with functions and
/// field offsets) at two scales, plus a random system heavy on loads and
/// stores — the rules demand deduction can get wrong.
std::vector<ConstraintSystem> demandWorkloads() {
  std::vector<ConstraintSystem> Out;
  {
    BenchmarkSpec Spec;
    Spec.NumFunctions = 10;
    Spec.VarsPerFunction = 8;
    Spec.NumGlobals = 16;
    Spec.Seed = 11;
    Out.push_back(generateBenchmark(Spec));
  }
  {
    BenchmarkSpec Spec;
    Spec.NumFunctions = 22;
    Spec.VarsPerFunction = 12;
    Spec.NumGlobals = 40;
    Spec.Seed = 77;
    Out.push_back(generateBenchmark(Spec));
  }
  {
    RandomSpec Spec;
    Spec.Seed = 23;
    Spec.NumVars = 60;
    Spec.NumObjs = 20;
    Spec.NumAddressOf = 45;
    Spec.NumCopies = 70;
    Spec.NumLoads = 25;
    Spec.NumStores = 25;
    Out.push_back(generateRandom(Spec));
  }
  return Out;
}

std::vector<NodeId> toVector(const SparseBitVector &Bits) {
  std::vector<NodeId> Ids;
  for (uint32_t V : Bits)
    Ids.push_back(V);
  return Ids;
}

Snapshot makeSnap(const ConstraintSystem &CS) {
  Snapshot S;
  S.CS = CS;
  S.Solution = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);
  S.SeedReps.resize(CS.numNodes());
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    S.SeedReps[V] = V;
  return S;
}

/// A pre-cancelled per-query budget: the governor trips at the first
/// cancellation point, which is the deterministic way to force the
/// demand path onto its escalation tier.
SolveBudget trippedBudget() {
  SolveBudget B;
  B.Cancel = CancelToken::create();
  B.Cancel.requestCancel();
  return B;
}

TEST(DemandSolver, PointsToMatchesEveryExhaustiveKind) {
  for (const ConstraintSystem &CS : demandWorkloads()) {
    DemandSolver DS(CS);
    for (SolverKind Kind : AllSolverKinds) {
      for (unsigned Threads : {0u, 4u}) {
        PointsToSolution Sol = solveFnFor(Kind, PtsRepr::Bitmap, Threads)(CS);
        for (NodeId V = 0; V != CS.numNodes(); ++V) {
          SparseBitVector Bits;
          ASSERT_TRUE(DS.pointsTo(V, nullptr, Bits).ok());
          EXPECT_EQ(toVector(Bits), Sol.pointsToVector(V))
              << "node " << V << " vs " << solverKindName(Kind)
              << " threads " << Threads;
        }
      }
    }
    // Every queried class ends certified; repeat queries are memo hits
    // that must not change the answer.
    EXPECT_GT(DS.memoCompleteCount(), 0u);
    PointsToSolution Ref = solveFnFor(SolverKind::LCD, PtsRepr::Bitmap)(CS);
    for (NodeId V = 0; V != CS.numNodes(); ++V) {
      EXPECT_TRUE(DS.isMemoComplete(V)) << "node " << V;
      SparseBitVector Bits;
      ASSERT_TRUE(DS.memoPointsTo(V, Bits));
      EXPECT_EQ(toVector(Bits), Ref.pointsToVector(V)) << "node " << V;
    }
  }
}

TEST(DemandSolver, AliasAndPointedByMatchExhaustive) {
  for (const ConstraintSystem &CS : demandWorkloads()) {
    const uint32_t N = CS.numNodes();
    DemandSolver DS(CS);
    PointsToSolution Sol = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);

    Rng R(97);
    for (int I = 0; I != 300; ++I) {
      NodeId P = static_cast<NodeId>(R.nextBelow(N));
      NodeId Q = static_cast<NodeId>(R.nextBelow(N));
      bool Verdict = false;
      ASSERT_TRUE(DS.alias(P, Q, nullptr, Verdict).ok());
      EXPECT_EQ(Verdict, Sol.mayAlias(P, Q))
          << "alias(" << P << "," << Q << ")";
    }

    for (NodeId Obj = 0; Obj != std::min(N, 48u); ++Obj) {
      std::vector<NodeId> Brute;
      for (NodeId V = 0; V != N; ++V)
        if (Sol.pointsToObj(V, Obj))
          Brute.push_back(V);
      SparseBitVector Bits;
      ASSERT_TRUE(DS.pointedBy(Obj, nullptr, Bits).ok());
      EXPECT_EQ(toVector(Bits), Brute) << "pointedBy(" << Obj << ")";
    }
  }
}

TEST(DemandSolver, FieldOffsetsAndStoreSlots) {
  // p -> s (size 3); *(p+1) = q with q -> o: the slot s+1 must reach o,
  // and a load r = *(p+1) must pull it back out. Exercises the
  // offsetTarget candidacy rules on both the store and load side.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p");
  NodeId S = CS.addNode("s", 3);
  NodeId Q = CS.addNode("q");
  NodeId O = CS.addNode("o");
  NodeId Rd = CS.addNode("r");
  CS.addAddressOf(P, S);
  CS.addAddressOf(Q, O);
  CS.addStore(P, Q, 1);
  CS.addLoad(Rd, P, 1);

  PointsToSolution Sol = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);
  DemandSolver DS(CS);
  for (NodeId V : {P, S, Q, O, Rd, static_cast<NodeId>(S + 1)}) {
    SparseBitVector Bits;
    ASSERT_TRUE(DS.pointsTo(V, nullptr, Bits).ok());
    EXPECT_EQ(toVector(Bits), Sol.pointsToVector(V)) << "node " << V;
  }
  SparseBitVector RBits;
  ASSERT_TRUE(DS.pointsTo(Rd, nullptr, RBits).ok());
  EXPECT_TRUE(RBits.test(O)) << "load through the field slot lost o";
}

TEST(DemandSolver, CountsQueriesStepsAndMemoHits) {
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::instance();
  obs::setMetricsEnabled(true);
  Reg.reset();

  ConstraintSystem CS = demandWorkloads().front();
  DemandSolver DS(CS);
  SparseBitVector Bits;
  ASSERT_TRUE(DS.pointsTo(0, nullptr, Bits).ok());
  EXPECT_EQ(Reg.counterValue(obs::Counter::DemandQueries), 1u);
  EXPECT_EQ(Reg.counterValue(obs::Counter::DemandMemoMisses), 1u);
  EXPECT_GT(Reg.counterValue(obs::Counter::DemandSteps), 0u);

  Bits = SparseBitVector();
  ASSERT_TRUE(DS.pointsTo(0, nullptr, Bits).ok());
  EXPECT_EQ(Reg.counterValue(obs::Counter::DemandQueries), 2u);
  EXPECT_EQ(Reg.counterValue(obs::Counter::DemandMemoHits), 1u);

  obs::setMetricsEnabled(false);
}

TEST(DemandTier, BudgetTripEscalatesToSoundExhaustiveSolve) {
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::instance();
  obs::setMetricsEnabled(true);
  Reg.reset();

  ConstraintSystem CS = demandWorkloads().front();
  PointsToSolution Sol = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);

  DemandTier::Options TO;
  TO.QueryBudget = trippedBudget();
  DemandTier Tier(CS, TO);

  DemandTier::IdList List;
  ASSERT_TRUE(Tier.pointsTo(3, List).ok());
  EXPECT_TRUE(Tier.escalated());
  EXPECT_EQ(Tier.escalationOutcome(), SolveOutcome::Precise);
  EXPECT_EQ(*List, Sol.pointsToVector(3));
  EXPECT_EQ(Reg.counterValue(obs::Counter::DemandEscalations), 1u);

  // Once escalated, every query kind answers from the one adopted
  // solution — still bit-equal to a cold exhaustive solve.
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    DemandTier::IdList L;
    ASSERT_TRUE(Tier.pointsTo(V, L).ok());
    EXPECT_EQ(*L, Sol.pointsToVector(V)) << "node " << V;
  }
  bool Verdict = false;
  ASSERT_TRUE(Tier.alias(1, 2, Verdict).ok());
  EXPECT_EQ(Verdict, Sol.mayAlias(1, 2));
  for (NodeId Obj = 0; Obj != std::min(CS.numNodes(), 16u); ++Obj) {
    std::vector<NodeId> Brute;
    for (NodeId V = 0; V != CS.numNodes(); ++V)
      if (Sol.pointsToObj(V, Obj))
        Brute.push_back(V);
    DemandTier::IdList L;
    ASSERT_TRUE(Tier.pointedBy(Obj, L).ok());
    EXPECT_EQ(*L, Brute) << "pointedBy(" << Obj << ")";
  }
  // Second escalation never runs: the solve happened exactly once.
  EXPECT_EQ(Reg.counterValue(obs::Counter::DemandEscalations), 1u);
  obs::setMetricsEnabled(false);
}

TEST(DemandTier, TripWithoutEscalationReportsStructuredStatus) {
  ConstraintSystem CS = demandWorkloads().front();
  DemandTier::Options TO;
  TO.QueryBudget = trippedBudget();
  TO.AllowEscalation = false;
  DemandTier Tier(CS, TO);

  DemandTier::IdList List;
  Status St = Tier.pointsTo(0, List);
  ASSERT_FALSE(St.ok());
  EXPECT_TRUE(St.isBudgetTrip()) << St.toString();
  EXPECT_FALSE(Tier.escalated());

  bool Verdict = false;
  St = Tier.alias(0, 1, Verdict);
  ASSERT_FALSE(St.ok());
  EXPECT_TRUE(St.isBudgetTrip()) << St.toString();

  St = Tier.pointedBy(0, List);
  ASSERT_FALSE(St.ok());
  EXPECT_TRUE(St.isBudgetTrip()) << St.toString();
}

TEST(DemandTier, ResolveDeltaInvalidatesMemoAndStaysExact) {
  ConstraintSystem CS = demandWorkloads().front();
  DemandTier Tier(CS);

  // Warm the memo on the base system.
  for (NodeId V = 0; V != std::min(CS.numNodes(), 32u); ++V) {
    DemandTier::IdList L;
    ASSERT_TRUE(Tier.pointsTo(V, L).ok());
  }
  ASSERT_GT(Tier.memoCompleteCount(), 0u);

  // Delta: a new object flowing into an existing variable (through a
  // copy chain and a store — the invalidateAll path), plus new nodes.
  ConstraintSystem Delta = Tier.system();
  NodeId Fresh = Delta.addNode("fresh_obj");
  NodeId Ptr = Delta.addNode("fresh_ptr");
  Delta.addAddressOf(Ptr, Fresh);
  Delta.addCopy(0, Ptr);
  Delta.addAddressOf(2, 1);
  Delta.addStore(2, Ptr);
  ASSERT_TRUE(Tier.resolveDelta(Delta).ok());

  PointsToSolution Sol =
      solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(Delta);
  for (NodeId V = 0; V != Delta.numNodes(); ++V) {
    DemandTier::IdList L;
    ASSERT_TRUE(Tier.pointsTo(V, L).ok());
    EXPECT_EQ(*L, Sol.pointsToVector(V)) << "node " << V << " after delta";
  }
  DemandTier::IdList PB;
  std::vector<NodeId> Brute;
  for (NodeId V = 0; V != Delta.numNodes(); ++V)
    if (Sol.pointsToObj(V, Fresh))
      Brute.push_back(V);
  ASSERT_TRUE(Tier.pointedBy(Fresh, PB).ok());
  EXPECT_EQ(*PB, Brute);

  // A node-table rewrite is rejected with a structured status.
  ConstraintSystem Bogus;
  Bogus.addNode("tiny");
  EXPECT_FALSE(Tier.resolveDelta(Bogus).ok());
}

TEST(DemandTier, ConcurrentQueriesStayExact) {
  ConstraintSystem CS = demandWorkloads().front();
  PointsToSolution Sol = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);
  DemandTier Tier(CS);
  const uint32_t N = CS.numNodes();

  for (unsigned NumThreads : {1u, 4u}) {
    std::vector<std::thread> Threads;
    std::vector<int> Failures(NumThreads, 0);
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        Rng R(101 + T);
        for (int I = 0; I != 200; ++I) {
          NodeId V = static_cast<NodeId>(R.nextBelow(N));
          if (I % 3 == 0) {
            bool Verdict = false;
            NodeId W = static_cast<NodeId>(R.nextBelow(N));
            if (!Tier.alias(V, W, Verdict).ok() ||
                Verdict != Sol.mayAlias(V, W))
              ++Failures[T];
          } else {
            DemandTier::IdList L;
            if (!Tier.pointsTo(V, L).ok() || *L != Sol.pointsToVector(V))
              ++Failures[T];
          }
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
    for (unsigned T = 0; T != NumThreads; ++T)
      EXPECT_EQ(Failures[T], 0) << "thread " << T << " of " << NumThreads;
  }
}

TEST(DemandQueryEngine, MemoAnswersAheadOfSnapshotSolution) {
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::instance();
  obs::setMetricsEnabled(true);
  Reg.reset();

  ConstraintSystem CS = demandWorkloads().front();
  auto Tier = std::make_shared<DemandTier>(CS);
  // Certify a handful of classes before the engine ever answers.
  for (NodeId V = 0; V != 8; ++V) {
    DemandTier::IdList L;
    ASSERT_TRUE(Tier->pointsTo(V, L).ok());
  }

  QueryEngine::Options QO;
  QO.CacheCapacity = 0; // Force every query through the memo probe.
  QueryEngine Engine(makeSnap(CS), QO);
  Engine.attachDemandMemo(Tier);

  const uint64_t Hits0 = Reg.counterValue(obs::Counter::DemandMemoHits);
  for (NodeId V = 0; V != 8; ++V)
    EXPECT_EQ(*Engine.pointsTo(V),
              Engine.snapshot().Solution.pointsToVector(V))
        << "node " << V;
  EXPECT_GT(Reg.counterValue(obs::Counter::DemandMemoHits), Hits0)
      << "certified classes must answer from the demand memo";

  // Uncertified nodes fall through to the snapshot solution.
  for (NodeId V = 8; V != std::min(CS.numNodes(), 24u); ++V)
    EXPECT_EQ(*Engine.pointsTo(V),
              Engine.snapshot().Solution.pointsToVector(V))
        << "node " << V;
  bool MemoVerdict = Engine.alias(0, 1);
  EXPECT_EQ(MemoVerdict, Engine.snapshot().Solution.mayAlias(0, 1));
  obs::setMetricsEnabled(false);
}

TEST(DemandQueryEngine, GovernedReverseIndexBuildTripsAndRetries) {
  ConstraintSystem CS = demandWorkloads().front();
  QueryEngine Engine(makeSnap(CS));

  SolveBudget Tripped = trippedBudget();
  SolveGovernor Gov(Tripped);
  QueryEngine::IdList Out;
  Status St = Engine.pointedBy(0, Out, &Gov);
  ASSERT_FALSE(St.ok());
  EXPECT_TRUE(St.isBudgetTrip()) << St.toString();

  // The tripped build committed nothing: a later unbudgeted call
  // rebuilds from scratch and answers exactly.
  ASSERT_TRUE(Engine.pointedBy(0, Out).ok());
  std::vector<NodeId> Brute;
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    if (Engine.snapshot().Solution.pointsToObj(V, 0))
      Brute.push_back(V);
  EXPECT_EQ(*Out, Brute);

  // Once built, even a tripped governor cannot fail the query.
  SolveGovernor Gov2(Tripped);
  EXPECT_TRUE(Engine.pointedBy(1, Out, &Gov2).ok());
}

TEST(DemandServe, DemandModeMatchesSnapshotModeAnswers) {
  ConstraintSystem CS = demandWorkloads().front();
  ServeSession SnapMode(makeSnap(CS));
  ServeSession DemandMode(CS);

  for (const char *Line :
       {"pts 0", "pts 5", "alias 0 1", "alias 3 4", "aliasbatch 0 1 2 3",
        "pointedby 1", "pointedby 7", "callees 0", "callgraph", "check"}) {
    std::ostringstream A, B;
    EXPECT_TRUE(SnapMode.handleLine(Line, A));
    EXPECT_TRUE(DemandMode.handleLine(Line, B));
    EXPECT_EQ(A.str(), B.str()) << "command: " << Line;
  }

  std::ostringstream StatsOut;
  EXPECT_TRUE(DemandMode.handleLine("stats", StatsOut));
  EXPECT_NE(StatsOut.str().find("demand: memo_complete"), std::string::npos);
}

TEST(DemandServe, ResolveFoldsDeltaAndReturnsToDemandPath) {
  ConstraintSystem CS = demandWorkloads().front();
  ServeSession Session(CS);

  // Warm, then force materialization so resolve also proves it drops the
  // stale snapshot.
  std::ostringstream Warm;
  EXPECT_TRUE(Session.handleLine("pts 0", Warm));
  EXPECT_TRUE(Session.handleLine("callgraph", Warm));

  ConstraintSystem Delta = CS;
  NodeId Fresh = Delta.addNode("fresh_obj");
  Delta.addAddressOf(0, Fresh);
  std::string Path = ::testing::TempDir() + "demand_serve_delta.cons";
  ASSERT_TRUE(Delta.writeToFile(Path));

  std::ostringstream ResolveOut;
  EXPECT_TRUE(Session.handleLine("resolve " + Path, ResolveOut));
  EXPECT_NE(ResolveOut.str().find("resolved: demand delta adopted"),
            std::string::npos)
      << ResolveOut.str();

  PointsToSolution Sol =
      solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(Delta);
  std::ostringstream Pts;
  EXPECT_TRUE(Session.handleLine("pts 0", Pts));
  std::string Expect = "pts(0):";
  for (NodeId V : Sol.pointsToVector(0))
    Expect += " " + std::to_string(V);
  Expect += "\n";
  EXPECT_EQ(Pts.str(), Expect);
  std::remove(Path.c_str());
}

#ifdef AG_PTATOOL_PATH

int runPtatool(const std::string &Args) {
  std::string Cmd = std::string(AG_PTATOOL_PATH) + " " + Args;
  int Raw = std::system(Cmd.c_str());
  return WEXITSTATUS(Raw);
}

TEST(DemandPtatool, QueryExitCodesAndServeSniffing) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "demand_e2e.cons";
  ConstraintSystem CS = demandWorkloads().front();
  ASSERT_TRUE(CS.writeToFile(Cons));

  // 0: answered on the demand path (all three query forms).
  EXPECT_EQ(runPtatool("query " + Cons + " 0 1 > /dev/null"), 0);
  EXPECT_EQ(runPtatool("query " + Cons + " --pts 0 > /dev/null"), 0);
  EXPECT_EQ(runPtatool("query " + Cons + " --pointed-by 1 > /dev/null"), 0);

  // 3: the per-query budget trips instantly; the escalation (same
  // ceilings, fallback allowed) degrades to the sound Steensgaard
  // answer.
  EXPECT_EQ(runPtatool("query " + Cons +
                       " --pts 0 --timeout 0.000001 > /dev/null"),
            3);
  // 4: --no-fallback forbids escalation; the trip surfaces with no
  // sound answer printed.
  EXPECT_EQ(runPtatool("query " + Cons +
                       " --pts 0 --timeout 0.000001 --no-fallback "
                       "> /dev/null 2> /dev/null"),
            4);
  // 1/2: bad node, missing args.
  EXPECT_EQ(runPtatool("query " + Cons + " --pts no_such_node "
                       "> /dev/null 2> /dev/null"),
            1);
  EXPECT_EQ(runPtatool("query " + Cons + " > /dev/null 2> /dev/null"), 2);

  // serve sniffs a .cons input and serves it demand-first.
  EXPECT_EQ(runPtatool("serve " + Cons +
                       " < /dev/null > /dev/null 2> /dev/null"),
            0);
}

#endif // AG_PTATOOL_PATH

} // namespace
