//===- AdtTest.cpp - Tests for union-find, worklists, RNG, SCC ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "adt/FaultInjector.h"
#include "adt/Hashing.h"
#include "adt/LruCache.h"
#include "adt/MemTracker.h"
#include "adt/Rng.h"
#include "adt/Scc.h"
#include "adt/UnionFind.h"
#include "adt/Worklist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <map>
#include <set>

using namespace ag;

namespace {

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFind, SingletonsAreOwnReps) {
  UnionFind UF(5);
  for (uint32_t I = 0; I != 5; ++I) {
    EXPECT_EQ(UF.find(I), I);
    EXPECT_TRUE(UF.isRepresentative(I));
  }
}

TEST(UnionFind, UniteMergesSets) {
  UnionFind UF(6);
  uint32_t R1 = UF.unite(0, 1);
  EXPECT_EQ(UF.find(0), UF.find(1));
  EXPECT_EQ(UF.find(0), R1);
  UF.unite(2, 3);
  EXPECT_NE(UF.find(0), UF.find(2));
  UF.unite(1, 3);
  EXPECT_EQ(UF.find(0), UF.find(2));
  EXPECT_EQ(UF.unite(0, 3), UF.find(0)) << "uniting united sets is a no-op";
}

TEST(UnionFind, UniteIntoKeepsSurvivor) {
  UnionFind UF(4);
  EXPECT_EQ(UF.uniteInto(2, 3), 2u);
  EXPECT_EQ(UF.find(3), 2u);
  // Survivor semantics hold even against rank preferences.
  UF.unite(0, 1);
  uint32_t Rep01 = UF.find(0);
  EXPECT_EQ(UF.uniteInto(3, Rep01), 2u) << "3's representative is 2";
  EXPECT_EQ(UF.find(0), 2u);
}

TEST(UnionFind, GrowPreservesState) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(10);
  EXPECT_EQ(UF.find(0), UF.find(1));
  EXPECT_EQ(UF.find(9), 9u);
  EXPECT_EQ(UF.size(), 10u);
}

TEST(UnionFind, RandomizedAgainstNaivePartition) {
  Rng R(5);
  constexpr uint32_t N = 200;
  UnionFind UF(N);
  std::vector<uint32_t> Naive(N);
  for (uint32_t I = 0; I != N; ++I)
    Naive[I] = I;
  auto naiveUnite = [&](uint32_t A, uint32_t B) {
    uint32_t From = Naive[B], To = Naive[A];
    if (From == To)
      return;
    for (uint32_t &X : Naive)
      if (X == From)
        X = To;
  };
  for (int Step = 0; Step != 500; ++Step) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(R.nextBelow(N));
    if (R.nextBool(0.5)) {
      UF.unite(A, B);
      naiveUnite(A, B);
    } else {
      EXPECT_EQ(UF.find(A) == UF.find(B), Naive[A] == Naive[B]);
    }
  }
}

//===----------------------------------------------------------------------===//
// Worklist
//===----------------------------------------------------------------------===//

TEST(Worklist, FifoOrder) {
  Worklist W(WorklistPolicy::Fifo);
  W.grow(10);
  W.push(3);
  W.push(1);
  W.push(4);
  EXPECT_EQ(W.pop(), 3u);
  EXPECT_EQ(W.pop(), 1u);
  EXPECT_EQ(W.pop(), 4u);
  EXPECT_TRUE(W.empty());
}

TEST(Worklist, DeduplicatesPushes) {
  Worklist W(WorklistPolicy::Fifo);
  W.grow(4);
  W.push(2);
  W.push(2);
  W.push(2);
  EXPECT_EQ(W.pop(), 2u);
  EXPECT_TRUE(W.empty());
  // After popping, the node may be pushed again.
  W.push(2);
  EXPECT_FALSE(W.empty());
  EXPECT_EQ(W.pop(), 2u);
}

TEST(Worklist, DividedLrfPrefersLeastRecentlyFired) {
  Worklist W(WorklistPolicy::DividedLrf);
  W.grow(8);
  // Establish firing history: 5 fired first (oldest), then 6, then 7.
  W.push(5);
  W.push(6);
  W.push(7);
  EXPECT_EQ(W.pop(), 5u); // Never-fired ties break by id.
  EXPECT_EQ(W.pop(), 6u);
  EXPECT_EQ(W.pop(), 7u);
  // Re-push in a different order: LRF must pop 5 (fired longest ago).
  W.push(7);
  W.push(5);
  W.push(6);
  EXPECT_EQ(W.pop(), 5u);
  EXPECT_EQ(W.pop(), 6u);
  EXPECT_EQ(W.pop(), 7u);
}

TEST(Worklist, DividedKeepsCurrentUntilDrained) {
  Worklist W(WorklistPolicy::DividedLrf);
  W.grow(8);
  W.push(1);
  W.push(2);
  EXPECT_EQ(W.pop(), 1u);
  // 3 goes to `next`, so it must come after the drained current (2).
  W.push(3);
  EXPECT_EQ(W.pop(), 2u);
  EXPECT_EQ(W.pop(), 3u);
}

TEST(Worklist, AllPoliciesDrainEverything) {
  for (WorklistPolicy P : {WorklistPolicy::Fifo, WorklistPolicy::Lrf,
                           WorklistPolicy::DividedLrf}) {
    Worklist W(P);
    W.grow(100);
    std::set<uint32_t> Expected;
    Rng R(11);
    for (int I = 0; I != 60; ++I) {
      uint32_t X = static_cast<uint32_t>(R.nextBelow(100));
      W.push(X);
      Expected.insert(X);
    }
    std::set<uint32_t> Seen;
    while (!W.empty())
      EXPECT_TRUE(Seen.insert(W.pop()).second) << "duplicate pop";
    EXPECT_EQ(Seen, Expected);
  }
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I != 10; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    (void)C;
  }
  Rng D(43);
  EXPECT_NE(Rng(42).next(), D.next());
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    uint64_t X = R.nextInRange(5, 9);
    EXPECT_GE(X, 5u);
    EXPECT_LE(X, 9u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng R(13);
  std::map<uint64_t, int> Counts;
  for (int I = 0; I != 10000; ++I)
    ++Counts[R.nextBelow(4)];
  for (uint64_t V = 0; V != 4; ++V)
    EXPECT_NEAR(Counts[V], 2500, 300) << "bucket " << V;
}

//===----------------------------------------------------------------------===//
// Static SCC
//===----------------------------------------------------------------------===//

TEST(Scc, SingletonGraph) {
  SccResult R = computeSccs(3, {{}, {}, {}});
  EXPECT_EQ(R.Members.size(), 3u);
  for (uint32_t I = 0; I != 3; ++I)
    EXPECT_EQ(R.Members[R.Comp[I]].size(), 1u);
}

TEST(Scc, SimpleCycle) {
  // 0 -> 1 -> 2 -> 0, plus 3 hanging off.
  SccResult R = computeSccs(4, {{1}, {2}, {0}, {0}});
  EXPECT_EQ(R.Comp[0], R.Comp[1]);
  EXPECT_EQ(R.Comp[1], R.Comp[2]);
  EXPECT_NE(R.Comp[3], R.Comp[0]);
  EXPECT_EQ(R.Members.size(), 2u);
}

TEST(Scc, ReverseTopologicalNumbering) {
  // Chain 0 -> 1 -> 2: successors must get smaller component ids.
  SccResult R = computeSccs(3, {{1}, {2}, {}});
  EXPECT_LT(R.Comp[2], R.Comp[1]);
  EXPECT_LT(R.Comp[1], R.Comp[0]);
}

TEST(Scc, SelfLoopIsItsOwnScc) {
  SccResult R = computeSccs(2, {{0, 1}, {}});
  EXPECT_NE(R.Comp[0], R.Comp[1]);
  EXPECT_EQ(R.Members[R.Comp[0]].size(), 1u);
}

TEST(Scc, NestedCyclesMergeCorrectly) {
  // Two interlocking cycles: 0->1->2->0 and 1->3->1 — all one SCC.
  SccResult R = computeSccs(4, {{1}, {2, 3}, {0}, {1}});
  EXPECT_EQ(R.Comp[0], R.Comp[1]);
  EXPECT_EQ(R.Comp[1], R.Comp[2]);
  EXPECT_EQ(R.Comp[2], R.Comp[3]);
}

TEST(Scc, RandomizedAgainstReachabilityOracle) {
  Rng Rand(3);
  constexpr uint32_t N = 40;
  for (int Trial = 0; Trial != 10; ++Trial) {
    std::vector<std::vector<uint32_t>> Succs(N);
    for (int E = 0; E != 120; ++E)
      Succs[Rand.nextBelow(N)].push_back(
          static_cast<uint32_t>(Rand.nextBelow(N)));
    // Floyd-Warshall-style reachability oracle.
    std::vector<std::bitset<N>> Reach(N);
    for (uint32_t U = 0; U != N; ++U) {
      Reach[U][U] = true;
      for (uint32_t V : Succs[U])
        Reach[U][V] = true;
    }
    for (uint32_t K = 0; K != N; ++K)
      for (uint32_t U = 0; U != N; ++U)
        if (Reach[U][K])
          Reach[U] |= Reach[K];
    SccResult R = computeSccs(N, Succs);
    for (uint32_t U = 0; U != N; ++U)
      for (uint32_t V = 0; V != N; ++V)
        EXPECT_EQ(R.Comp[U] == R.Comp[V], Reach[U][V] && Reach[V][U])
            << U << " vs " << V;
  }
}

//===----------------------------------------------------------------------===//
// MemTracker
//===----------------------------------------------------------------------===//

TEST(MemTracker, JointPeakIsHighWaterMarkNotSumOfPeaks) {
  // The per-category peaks of two allocations that were never live at the
  // same time must not inflate the joint peak. All expectations are deltas
  // from the tracker's state at test start, since it is process-wide.
  MemTracker &T = MemTracker::instance();
  T.resetPeaks();
  uint64_t Base = T.currentBytesTotal();

  T.allocate(MemCategory::Bitmap, 1000);
  T.release(MemCategory::Bitmap, 1000);
  T.allocate(MemCategory::BddTable, 600);
  T.release(MemCategory::BddTable, 600);

  EXPECT_EQ(T.currentBytesTotal(), Base);
  // True high-water mark: only one of the two was ever live.
  EXPECT_EQ(T.peakBytesJoint(), Base + 1000);
  // Sum-of-peaks over-approximates: both category peaks count.
  EXPECT_EQ(T.peakBytesTotal(), Base + 1600);
}

TEST(MemTracker, ResetPeaksDropsToLiveBytes) {
  MemTracker &T = MemTracker::instance();
  T.allocate(MemCategory::Other, 512);
  T.resetPeaks();
  uint64_t Live = T.currentBytesTotal();
  EXPECT_EQ(T.peakBytesJoint(), Live);
  T.release(MemCategory::Other, 512);
  // Peaks never decrease below the mark set at reset.
  EXPECT_EQ(T.peakBytesJoint(), Live);
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

class FaultInjectorTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().disarmAll(); }
  void TearDown() override { FaultInjector::instance().disarmAll(); }
};

TEST_F(FaultInjectorTest, CountdownFiresExactlyOnce) {
  FaultInjector &Inj = FaultInjector::instance();
  EXPECT_FALSE(Inj.shouldFail(FaultSite::GovernorCheck));
  Inj.armAfter(FaultSite::GovernorCheck, /*Countdown=*/2);
  EXPECT_FALSE(Inj.shouldFail(FaultSite::GovernorCheck));
  EXPECT_FALSE(Inj.shouldFail(FaultSite::GovernorCheck));
  EXPECT_TRUE(Inj.shouldFail(FaultSite::GovernorCheck));
  // One-shot: the site disarms itself after firing.
  EXPECT_FALSE(Inj.shouldFail(FaultSite::GovernorCheck));
  EXPECT_FALSE(Inj.anyArmed());
}

TEST_F(FaultInjectorTest, AllocationFaultLatchesUntilConsumed) {
  FaultInjector &Inj = FaultInjector::instance();
  EXPECT_FALSE(Inj.consumePendingAllocationFault());
  Inj.armAfter(FaultSite::Allocation, /*Countdown=*/0);
  memAllocate(MemCategory::Other, 8);
  memRelease(MemCategory::Other, 8);
  EXPECT_TRUE(Inj.consumePendingAllocationFault());
  // Consuming clears the latch.
  EXPECT_FALSE(Inj.consumePendingAllocationFault());
}

TEST_F(FaultInjectorTest, DisarmClearsPendingFault) {
  FaultInjector &Inj = FaultInjector::instance();
  Inj.armAfter(FaultSite::Allocation, /*Countdown=*/0);
  memAllocate(MemCategory::Other, 8);
  memRelease(MemCategory::Other, 8);
  Inj.disarm(FaultSite::Allocation);
  EXPECT_FALSE(Inj.consumePendingAllocationFault());
}

TEST_F(FaultInjectorTest, RandomModeIsDeterministicPerSeed) {
  FaultInjector &Inj = FaultInjector::instance();
  auto sample = [&](uint64_t Seed) {
    Inj.armRandom(FaultSite::GovernorCheck, 0.5, Seed);
    std::vector<bool> Seq;
    for (int I = 0; I != 64; ++I)
      Seq.push_back(Inj.shouldFail(FaultSite::GovernorCheck));
    Inj.disarm(FaultSite::GovernorCheck);
    return Seq;
  };
  std::vector<bool> A = sample(7), B = sample(7), C = sample(8);
  EXPECT_EQ(A, B) << "same seed must reproduce the same fault sequence";
  EXPECT_NE(A, C) << "different seeds should diverge";
  // Roughly half the hits fire at p = 0.5.
  int Fired = static_cast<int>(std::count(A.begin(), A.end(), true));
  EXPECT_GT(Fired, 16);
  EXPECT_LT(Fired, 48);
}

TEST(Hashing, Fnv1aMatchesReferenceVectors) {
  // Standard FNV-1a test vectors (64-bit).
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
  // Streaming in two pieces equals one pass.
  EXPECT_EQ(fnv1a("bar", 3, fnv1a("foo", 3)), fnv1a("foobar", 6));
}

TEST(Hashing, Mix64IsABijectionOnSamples) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 1000; ++I)
    Seen.insert(mix64(I));
  EXPECT_EQ(Seen.size(), 1000u) << "no collisions on a dense range";
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1)) << "order-sensitive";
}

TEST(LruCache, HitMissAndRefresh) {
  ShardedLruCache<uint64_t, int> C(4, 1);
  EXPECT_FALSE(C.get(1).has_value());
  C.put(1, 10);
  C.put(2, 20);
  EXPECT_EQ(C.get(1).value(), 10);
  EXPECT_EQ(C.get(2).value(), 20);
  C.put(1, 11); // Refresh overwrites.
  EXPECT_EQ(C.get(1).value(), 11);
  CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache<uint64_t, int> C(2, 1);
  C.put(1, 10);
  C.put(2, 20);
  EXPECT_TRUE(C.get(1).has_value()); // 1 is now most recent.
  C.put(3, 30);                      // Evicts 2, the LRU entry.
  EXPECT_TRUE(C.get(1).has_value());
  EXPECT_FALSE(C.get(2).has_value());
  EXPECT_TRUE(C.get(3).has_value());
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_EQ(C.size(), 2u);
}

TEST(LruCache, ZeroCapacityStoresNothing) {
  ShardedLruCache<uint64_t, int> C(0, 4);
  for (uint64_t K = 0; K != 100; ++K)
    C.put(K, int(K));
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.get(5).has_value());
  EXPECT_EQ(C.stats().Entries, 0u);
}

TEST(LruCache, ShardedKeepsEveryEntryReachable) {
  ShardedLruCache<uint64_t, uint64_t> C(1024, 8);
  for (uint64_t K = 0; K != 500; ++K)
    C.put(K, K * 3);
  for (uint64_t K = 0; K != 500; ++K) {
    auto V = C.get(K);
    ASSERT_TRUE(V.has_value()) << K;
    EXPECT_EQ(*V, K * 3);
  }
  EXPECT_EQ(C.size(), 500u);
  C.clear();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.get(7).has_value());
}

} // namespace
