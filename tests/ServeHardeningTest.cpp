//===- ServeHardeningTest.cpp - Hardened serving session ------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ServeSession robustness: bounded line reading (oversized lines, EOF
/// mid-line, binary garbage), structured overload and deadline shedding
/// with the admission queue, retry-with-backoff warm-start resolve
/// degrading to a served sound fallback, the in-REPL `check` self-check,
/// per-request fault injection, and `ptatool serve` end to end from a
/// generation directory.
///
//===----------------------------------------------------------------------===//

#include "serve/ServeSession.h"

#include "adt/FaultInjector.h"
#include "adt/Rng.h"
#include "check/SolutionChecker.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "serve/SnapshotStore.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace ag;

namespace {

Snapshot makeSnapshot(const ConstraintSystem &CS) {
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution = solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                        nullptr, SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  return Snap;
}

ConstraintSystem tinySystem() {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o"), Q = CS.addNode("q");
  CS.addAddressOf(P, O);
  CS.addCopy(Q, P);
  return CS;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++N;
  return N;
}

TEST(ServeSession, EofMidLineProcessesPartialLineAndExitsZero) {
  ServeSession S(makeSnapshot(tinySystem()));
  std::istringstream In("pts p"); // No trailing newline, no quit.
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_NE(Out.str().find("pts(p): 1\n"), std::string::npos)
      << "the unterminated final line must still be served: " << Out.str();
}

TEST(ServeSession, OversizedLineGetsStructuredErrorAndSessionSurvives) {
  ServeOptions Opts;
  Opts.MaxLineBytes = 64;
  ServeSession S(makeSnapshot(tinySystem()), Opts);
  std::string Long(1000, 'x');
  std::istringstream In("pts " + Long + "\npts p\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_NE(Out.str().find("error: line too long (max 64 bytes)"),
            std::string::npos);
  EXPECT_NE(Out.str().find("pts(p): 1\n"), std::string::npos)
      << "the session must keep serving after an oversized line";
  EXPECT_EQ(S.counters().OversizedLines, 1u);
}

TEST(ServeSession, BinaryGarbageNeverKillsTheSession) {
  ServeSession S(makeSnapshot(tinySystem()));
  Rng R(77);
  std::ostringstream InBuf;
  for (int Line = 0; Line != 200; ++Line) {
    size_t Len = R.nextBelow(40);
    for (size_t I = 0; I != Len; ++I) {
      char C = static_cast<char>(1 + R.nextBelow(255));
      if (C == '\n')
        C = ' ';
      InBuf << C;
    }
    InBuf << "\n";
  }
  InBuf << "pts p\nquit\n";
  std::istringstream In(InBuf.str());
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_NE(Out.str().find("pts(p): 1\n"), std::string::npos)
      << "the session must still answer after 200 garbage lines";
}

TEST(ServeSession, UnknownAndMalformedCommandsKeepSessionAlive) {
  ServeSession S(makeSnapshot(tinySystem()));
  std::istringstream In("frobnicate\npts\npts p q\nalias p\nsleep nope\n"
                        "resolve\npts p\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  const std::string Text = Out.str();
  EXPECT_NE(Text.find("error: unknown command 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(Text.find("error: pts expects one node"), std::string::npos);
  EXPECT_NE(Text.find("error: alias expects two nodes"), std::string::npos);
  EXPECT_NE(Text.find("error: sleep expects milliseconds"),
            std::string::npos);
  EXPECT_NE(Text.find("error: resolve expects one constraint file"),
            std::string::npos);
  EXPECT_NE(Text.find("pts(p): 1\n"), std::string::npos);
}

TEST(ServeSession, QueueOverloadShedsWithStructuredErrors) {
  ServeOptions Opts;
  Opts.QueueCapacity = 1;
  ServeSession S(makeSnapshot(tinySystem()), Opts);
  // The worker parks on `sleep` while the reader races ahead: with a
  // one-slot queue most of the pts burst must be shed — with a structured
  // reply each, never a crash or hang.
  std::istringstream In("sleep 300\npts p\npts p\npts p\npts p\npts p\n"
                        "pts p\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);

  ServeCounters C = S.counters();
  EXPECT_GE(C.Shed, 1u) << "a one-slot queue must shed under this burst";
  EXPECT_EQ(C.Admitted + C.Shed, 8u)
      << "every line is either admitted or shed";
  const std::string Text = Out.str();
  EXPECT_EQ(countOccurrences(Text, "ERR overloaded: queue full"), C.Shed);
  // Exactly one reply per line: sheds reply inline, admitted requests
  // reply from the worker, an executed `quit` replies nothing.
  size_t Replies = countOccurrences(Text, "\n") - 1; // Minus the banner.
  EXPECT_TRUE(Replies == 7 || Replies == 8) << Text;
}

TEST(ServeSession, DeadlineDropsRequestsThatWaitedTooLong) {
  ServeOptions Opts;
  Opts.QueueCapacity = 8;
  Opts.DeadlineSeconds = 0.05;
  ServeSession S(makeSnapshot(tinySystem()), Opts);
  std::istringstream In("sleep 200\npts p\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_GE(S.counters().DeadlineDropped, 1u);
  EXPECT_NE(Out.str().find("ERR deadline: waited"), std::string::npos);
  EXPECT_NE(Out.str().find("slept 200 ms"), std::string::npos)
      << "the request that ran promptly must not be dropped";
}

TEST(ServeSession, InjectedRequestFaultGetsStructuredErrorAndSessionLives) {
  FaultInjector::instance().disarmAll();
  ServeSession S(makeSnapshot(tinySystem()));
  FaultInjector::instance().armAfter(FaultSite::ServeRequest, 1);
  std::istringstream In("pts p\npts p\npts p\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  FaultInjector::instance().disarmAll();
  const std::string Text = Out.str();
  EXPECT_EQ(countOccurrences(Text, "ERR internal: injected fault"), 1u);
  EXPECT_EQ(countOccurrences(Text, "pts(p): 1\n"), 2u)
      << "requests before and after the fault must succeed";
  EXPECT_EQ(S.counters().InjectedFaults, 1u);
}

TEST(ServeSession, CheckCommandCertifiesServedSnapshot) {
  ServeSession S(makeSnapshot(tinySystem()));
  std::istringstream In("check\nstats\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_NE(Out.str().find("check: certified:"), std::string::npos);
  EXPECT_NE(Out.str().find("serve: requests"), std::string::npos)
      << "stats must include the serve hardening counters";
}

/// Base/delta pair for resolve tests: a program-shaped system split so
/// the delta genuinely needs propagation work.
struct ResolveFixture {
  Snapshot BaseSnap;
  std::string DeltaPath;
};

ResolveFixture makeResolveFixture(const std::string &Tag) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  Spec.Seed = 31;
  ConstraintSystem Full = generateBenchmark(Spec);
  DeltaSplit Split = splitDelta(Full, 0.3, /*Seed=*/5);
  ConstraintSystem DeltaCS = Full.cloneNodeTable();
  for (const Constraint &C : Split.Delta)
    DeltaCS.add(C);

  ResolveFixture F;
  F.BaseSnap = makeSnapshot(Split.Base);
  F.DeltaPath = ::testing::TempDir() + "serve_resolve_" + Tag + ".cons";
  EXPECT_TRUE(DeltaCS.writeToFile(F.DeltaPath));
  return F;
}

TEST(ServeSession, ResolveAdoptsPreciseResultAndServesIt) {
  ResolveFixture F = makeResolveFixture("precise");
  ServeSession S(F.BaseSnap);
  size_t BaseConstraints = S.servingSnapshot().CS.constraints().size();

  std::ostringstream Out;
  EXPECT_TRUE(S.handleLine("resolve " + F.DeltaPath, Out));
  EXPECT_NE(Out.str().find("resolved: outcome precise, attempt 1/3"),
            std::string::npos)
      << Out.str();
  EXPECT_GT(S.servingSnapshot().CS.constraints().size(), BaseConstraints)
      << "the delta must be folded into the served system";
  EXPECT_EQ(S.servingSnapshot().Outcome, SolveOutcome::Precise);

  // The adopted solution certifies against the adopted system, and the
  // session keeps serving queries.
  std::ostringstream Out2;
  EXPECT_TRUE(S.handleLine("check", Out2));
  EXPECT_NE(Out2.str().find("check: certified:"), std::string::npos);
  std::ostringstream Out3;
  EXPECT_TRUE(S.handleLine("pts 0", Out3));
  EXPECT_NE(Out3.str().find("pts(0):"), std::string::npos);
}

TEST(ServeSession, ResolveRetriesWithBackoffThenServesSoundFallback) {
  ResolveFixture F = makeResolveFixture("fallback");
  // Precise reference for the soundness contract below.
  ConstraintSystem FullCS = F.BaseSnap.CS;
  {
    ConstraintSystem DeltaCS;
    ASSERT_TRUE(ConstraintSystem::loadFromFile(F.DeltaPath, DeltaCS).ok());
    for (const Constraint &C : DeltaCS.constraints())
      FullCS.add(C);
  }
  PointsToSolution Precise = solve(FullCS, SolverKind::LCDHCD,
                                   PtsRepr::Bitmap);

  ServeOptions Opts;
  Opts.ResolveBudget.MaxPropagations = 1; // 1, 4, 16 across attempts.
  Opts.ResolveAttempts = 3;
  Opts.ResolveBackoff = 4.0;
  ServeSession S(F.BaseSnap, Opts);

  std::ostringstream Out;
  EXPECT_TRUE(S.handleLine("resolve " + F.DeltaPath, Out));
  EXPECT_NE(Out.str().find("resolved: outcome fallback after 3 attempts"),
            std::string::npos)
      << Out.str();
  EXPECT_EQ(S.counters().ResolveRetries, 2u)
      << "attempts 1 and 2 must have retried before degrading";

  // The served fallback covers the warm-start base plus the delta (the
  // base is OVS-reduced, so sizes compare against the snapshot, not the
  // pre-reduction system), certifies as a fixed point, and soundly
  // over-approximates the precise answer.
  const Snapshot &Served = S.servingSnapshot();
  EXPECT_EQ(Served.Outcome, SolveOutcome::Fallback);
  EXPECT_TRUE(Served.Sound);
  EXPECT_GT(Served.CS.constraints().size(),
            F.BaseSnap.CS.constraints().size());
  EXPECT_TRUE(checkSolution(Served.CS, Served.Solution).ok());
  EXPECT_TRUE(checkSuperset(Served.Solution, Precise).ok())
      << "a served fallback may never drop a precise points-to fact";
}

TEST(ServeSession, ResolveOnFallbackSnapshotIsRejectedStructurally) {
  Snapshot Snap = makeSnapshot(tinySystem());
  Snap.Outcome = SolveOutcome::Fallback; // Simulate serving a fallback.
  ServeSession S(std::move(Snap));
  std::ostringstream Out;
  EXPECT_TRUE(S.handleLine("resolve /nonexistent/delta.cons", Out));
  EXPECT_EQ(Out.str(), "error: resolve requires a precise snapshot\n");
}

#ifdef AG_PTATOOL_PATH

int runServePtatool(const std::string &Args) {
  std::string Cmd = std::string(AG_PTATOOL_PATH) + " " + Args;
  int Raw = std::system(Cmd.c_str());
  return WEXITSTATUS(Raw);
}

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

TEST(ServeSessionE2e, ServeRecoversNewestValidGenerationFromDirectory) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "serve_dir.cons";
  std::string Store = Dir + "serve_dir.store";
  std::string InPath = Dir + "serve_dir.in";
  std::string OutPath = Dir + "serve_dir.out";
  (void)std::system(("rm -rf " + Store).c_str());
  ::mkdir(Store.c_str(), 0755);

  ASSERT_TRUE(tinySystem().writeToFile(Cons));
  ASSERT_EQ(runServePtatool("snapshot " + Cons + " " + Store +
                            " > /dev/null"),
            0);
  ASSERT_EQ(runServePtatool("snapshot " + Cons + " " + Store +
                            " > /dev/null"),
            0);
  // Corrupt the newest generation and leave temp litter; serve must fall
  // back to the intact generation.
  std::ofstream(Store + "/gen-2.snap", std::ios::trunc) << "garbage";
  std::ofstream(Store + "/gen-3.snap.tmp") << "torn";

  std::ofstream(InPath) << "pts p\nquit\n";
  ASSERT_EQ(runServePtatool("serve " + Store + " < " + InPath + " > " +
                            OutPath + " 2> /dev/null"),
            0);
  EXPECT_NE(slurpFile(OutPath).find("pts(p): 1\n"), std::string::npos);
}

TEST(ServeSessionE2e, OverloadAndFaultFlagsProduceStructuredErrors) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "serve_flags.cons";
  std::string Snap = Dir + "serve_flags.snap";
  std::string InPath = Dir + "serve_flags.in";
  std::string OutPath = Dir + "serve_flags.out";
  ASSERT_TRUE(tinySystem().writeToFile(Cons));
  ASSERT_EQ(runServePtatool("snapshot " + Cons + " " + Snap + " > /dev/null"),
            0);

  std::ofstream(InPath) << "sleep 200\npts p\npts p\npts p\npts p\nquit\n";
  ASSERT_EQ(runServePtatool("serve " + Snap + " --max-queue 1 < " + InPath +
                            " > " + OutPath),
            0);
  EXPECT_NE(slurpFile(OutPath).find("ERR overloaded: queue full"),
            std::string::npos);

  ASSERT_EQ(runServePtatool("serve " + Snap +
                            " --inject-fault serve_request:0 < " + InPath +
                            " > " + OutPath),
            0);
  EXPECT_NE(slurpFile(OutPath).find("ERR internal: injected fault"),
            std::string::npos);
}

#endif // AG_PTATOOL_PATH

} // namespace
