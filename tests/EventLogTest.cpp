//===- EventLogTest.cpp - Bounded async wide-event writer -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The EventLog's core contract: publish() never blocks, overflow drops
/// lines and counts them instead of stalling the producer, the writer
/// drains everything that was accepted, and the MPMC ring stays correct
/// under concurrent producers (the TSan CI shard runs this suite).
///
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ag;

namespace {

std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  std::istringstream In(Text);
  for (std::string L; std::getline(In, L);)
    Out.push_back(L);
  return Out;
}

TEST(EventLog, ManualDrainWritesPublishedLinesInOrder) {
  std::ostringstream Sink;
  obs::EventLog::Options O;
  O.Capacity = 8;
  O.ManualDrain = true;
  obs::EventLog Log(Sink, O);
  EXPECT_TRUE(Log.publish("first"));
  EXPECT_TRUE(Log.publish("second"));
  EXPECT_EQ(Log.drain(), 2u);
  std::vector<std::string> L = lines(Sink.str());
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(L[0], "first");
  EXPECT_EQ(L[1], "second");
  EXPECT_EQ(Log.published(), 2u);
  EXPECT_EQ(Log.dropped(), 0u);
  EXPECT_EQ(Log.written(), 2u);
}

TEST(EventLog, OverflowDropsAndCountsInsteadOfBlocking) {
  std::ostringstream Sink;
  obs::EventLog::Options O;
  O.Capacity = 4;
  O.ManualDrain = true;
  obs::EventLog Log(Sink, O);
  unsigned Accepted = 0;
  for (int I = 0; I != 10; ++I)
    Accepted += Log.publish("line " + std::to_string(I)) ? 1 : 0;
  // Exactly the ring's capacity was accepted; the rest were dropped and
  // counted — publish returned promptly for every call (a blocked
  // publish would hang this single-threaded test forever).
  EXPECT_EQ(Accepted, 4u);
  EXPECT_EQ(Log.published(), 4u);
  EXPECT_EQ(Log.dropped(), 6u);
  EXPECT_EQ(Log.drain(), 4u);
  std::vector<std::string> L = lines(Sink.str());
  ASSERT_EQ(L.size(), 4u);
  EXPECT_EQ(L[0], "line 0");
  EXPECT_EQ(L[3], "line 3");
  // Space freed by the drain is reusable.
  EXPECT_TRUE(Log.publish("after"));
  EXPECT_EQ(Log.drain(), 1u);
}

TEST(EventLog, WriterThreadDrainsEverythingOnClose) {
  std::ostringstream Sink;
  obs::EventLog::Options O;
  O.Capacity = 1024;
  O.FlushEveryLines = 8;
  obs::EventLog Log(Sink, O);
  const unsigned N = 500;
  unsigned Accepted = 0;
  for (unsigned I = 0; I != N; ++I)
    Accepted += Log.publish("event " + std::to_string(I)) ? 1 : 0;
  Log.close();
  EXPECT_EQ(Log.written(), Accepted);
  EXPECT_EQ(lines(Sink.str()).size(), Accepted);
}

TEST(EventLog, ConcurrentProducersLoseNothingWithinCapacity) {
  std::ostringstream Sink;
  obs::EventLog::Options O;
  O.Capacity = 4096; // Above the total publish volume: no drops expected.
  obs::EventLog Log(Sink, O);
  constexpr unsigned Threads = 4, PerThread = 256;
  std::vector<std::thread> Producers;
  for (unsigned T = 0; T != Threads; ++T)
    Producers.emplace_back([&Log, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        Log.publish("t" + std::to_string(T) + " " + std::to_string(I));
    });
  for (std::thread &P : Producers)
    P.join();
  Log.close();
  // The writer ran concurrently with the producers, so capacity was
  // never the binding constraint here — but assert on published() so the
  // invariant is written down: accepted lines are never lost.
  EXPECT_EQ(Log.published() + Log.dropped(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(Log.written(), Log.published());
  EXPECT_EQ(lines(Sink.str()).size(), Log.published());
}

TEST(EventLog, OpenRejectsUnwritablePathWithStatus) {
  Status Err;
  std::unique_ptr<obs::EventLog> Log =
      obs::EventLog::open("/nonexistent-dir/events.jsonl",
                          obs::EventLog::Options(), Err);
  EXPECT_EQ(Log, nullptr);
  EXPECT_FALSE(Err.ok());
}

TEST(EventLog, OpenAppendsToFileAndCloseFlushes) {
  std::string Path = ::testing::TempDir() + "/ag_eventlog_test.jsonl";
  std::remove(Path.c_str());
  for (int Round = 0; Round != 2; ++Round) {
    Status Err;
    std::unique_ptr<obs::EventLog> Log =
        obs::EventLog::open(Path, obs::EventLog::Options(), Err);
    ASSERT_NE(Log, nullptr) << Err.toString();
    EXPECT_TRUE(Log->publish("round " + std::to_string(Round)));
    Log->close();
  }
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::vector<std::string> L = lines(Buf.str());
  ASSERT_EQ(L.size(), 2u) << "open() must append, not truncate";
  EXPECT_EQ(L[0], "round 0");
  EXPECT_EQ(L[1], "round 1");
  std::remove(Path.c_str());
}

} // namespace
