//===- WorkloadGenTest.cpp - Workload generator tests ---------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "workload/WorkloadGen.h"

#include "constraints/OfflineVariableSubstitution.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

TEST(WorkloadGen, DeterministicPerSeed) {
  RandomSpec Spec;
  Spec.Seed = 7;
  ConstraintSystem A = generateRandom(Spec);
  ConstraintSystem B = generateRandom(Spec);
  EXPECT_EQ(A.serialize(), B.serialize());
  Spec.Seed = 8;
  ConstraintSystem C = generateRandom(Spec);
  EXPECT_NE(A.serialize(), C.serialize());
}

TEST(WorkloadGen, BenchmarkDeterministic) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  ConstraintSystem A = generateBenchmark(Spec);
  ConstraintSystem B = generateBenchmark(Spec);
  EXPECT_EQ(A.serialize(), B.serialize());
}

TEST(WorkloadGen, RandomRespectsCounts) {
  RandomSpec Spec;
  Spec.NumVars = 30;
  Spec.NumObjs = 10;
  Spec.NumAddressOf = 25;
  Spec.NumCopies = 50;
  Spec.NumLoads = 15;
  Spec.NumStores = 15;
  Spec.SaturateDerefs = false;
  Spec.NumCycles = 0;
  Spec.NumIndirectCalls = 0;
  ConstraintSystem CS = generateRandom(Spec);
  // Dedup may drop a few; kinds must be near the requested counts.
  EXPECT_LE(CS.countKind(ConstraintKind::AddressOf), 25u);
  EXPECT_GE(CS.countKind(ConstraintKind::AddressOf), 15u);
  EXPECT_LE(CS.countKind(ConstraintKind::Load), 15u);
  EXPECT_LE(CS.countKind(ConstraintKind::Store), 15u);
}

TEST(WorkloadGen, SaturationKeepsDerefsNonEmpty) {
  RandomSpec Spec;
  Spec.Seed = 5;
  Spec.SaturateDerefs = true;
  ConstraintSystem CS = generateRandom(Spec);
  // Every load/store base must have at least one address-of constraint.
  std::vector<bool> HasBase(CS.numNodes(), false);
  for (const Constraint &C : CS.constraints())
    if (C.Kind == ConstraintKind::AddressOf)
      HasBase[C.Dst] = true;
  for (const Constraint &C : CS.constraints()) {
    if (C.Kind == ConstraintKind::Load)
      EXPECT_TRUE(HasBase[C.Src]) << "load base " << C.Src;
    if (C.Kind == ConstraintKind::Store)
      EXPECT_TRUE(HasBase[C.Dst]) << "store base " << C.Dst;
  }
}

TEST(WorkloadGen, PaperSuitesScaleMonotonically) {
  std::vector<BenchmarkSpec> Suites = paperSuites(0.2);
  ASSERT_EQ(Suites.size(), 6u);
  EXPECT_EQ(Suites[0].Name, "emacs");
  EXPECT_EQ(Suites[5].Name, "linux");
  ConstraintSystem Emacs = generateBenchmark(Suites[0]);
  ConstraintSystem Linux = generateBenchmark(Suites[5]);
  EXPECT_LT(Emacs.constraints().size(), Linux.constraints().size())
      << "suite sizes must grow from emacs to linux";
}

TEST(WorkloadGen, OvsReductionInPaperRange) {
  // The paper reports OVS removes 60-77% of constraints; our generator
  // should land in a comparable band (we accept a wider 55-90%).
  for (const BenchmarkSpec &Spec : paperSuites(0.2)) {
    ConstraintSystem CS = generateBenchmark(Spec);
    OvsResult R = runOfflineVariableSubstitution(CS);
    double Reduction =
        1.0 - double(R.Reduced.constraints().size()) /
                  double(CS.constraints().size());
    EXPECT_GT(Reduction, 0.55) << Spec.Name;
    EXPECT_LT(Reduction, 0.90) << Spec.Name;
  }
}

TEST(WorkloadGen, BenchmarkHasAllConstraintKinds) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 20;
  ConstraintSystem CS = generateBenchmark(Spec);
  EXPECT_GT(CS.countKind(ConstraintKind::AddressOf), 0u);
  EXPECT_GT(CS.countKind(ConstraintKind::Copy), 0u);
  EXPECT_GT(CS.countKind(ConstraintKind::Load), 0u);
  EXPECT_GT(CS.countKind(ConstraintKind::Store), 0u);
  // Indirect calls produce offset dereferences.
  bool HasOffset = false;
  for (const Constraint &C : CS.constraints())
    HasOffset |= C.Offset != 0;
  EXPECT_TRUE(HasOffset);
}

TEST(WorkloadGen, GeneratedSystemsSerializeRoundTrip) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 6;
  ConstraintSystem CS = generateBenchmark(Spec);
  std::string Text = CS.serialize();
  ConstraintSystem Back;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::parse(Text, Back, Error)) << Error;
  EXPECT_EQ(Back.serialize(), Text);
}

TEST(WorkloadGen, SplitDeltaIsADeterministicPartition) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  ConstraintSystem Full = generateBenchmark(Spec);

  DeltaSplit A = splitDelta(Full, 0.2, 99);
  DeltaSplit B = splitDelta(Full, 0.2, 99);
  EXPECT_EQ(A.Base.serialize(), B.Base.serialize());
  EXPECT_EQ(A.Delta, B.Delta);

  // Exact partition: base + delta constraints == full constraints, same
  // node table, nothing lost or duplicated.
  EXPECT_EQ(A.Base.numNodes(), Full.numNodes());
  EXPECT_EQ(A.Base.constraints().size() + A.Delta.size(),
            Full.constraints().size());
  size_t BaseIdx = 0, DeltaIdx = 0;
  for (const Constraint &C : Full.constraints()) {
    if (BaseIdx < A.Base.constraints().size() &&
        A.Base.constraints()[BaseIdx] == C)
      ++BaseIdx;
    else if (DeltaIdx < A.Delta.size() && A.Delta[DeltaIdx] == C)
      ++DeltaIdx;
    else
      FAIL() << "constraint missing from both halves";
  }
  EXPECT_EQ(BaseIdx, A.Base.constraints().size());
  EXPECT_EQ(DeltaIdx, A.Delta.size());

  // The fraction is honoured roughly, and a different seed picks a
  // different subset.
  double Frac = double(A.Delta.size()) / double(Full.constraints().size());
  EXPECT_GT(Frac, 0.1);
  EXPECT_LT(Frac, 0.3);
  DeltaSplit C2 = splitDelta(Full, 0.2, 100);
  EXPECT_NE(C2.Delta, A.Delta);

  // Degenerate fractions: 0 keeps everything in the base; a tiny positive
  // fraction still holds out at least one constraint.
  DeltaSplit None = splitDelta(Full, 0.0, 1);
  EXPECT_TRUE(None.Delta.empty());
  EXPECT_EQ(None.Base.constraints().size(), Full.constraints().size());
  DeltaSplit Tiny = splitDelta(Full, 1e-9, 1);
  EXPECT_FALSE(Tiny.Delta.empty());
}

} // namespace
