//===- MemKernelTest.cpp - Arena, interning and COW solution tests --------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the memory-kernel overhaul: ElementArena slab reuse and global
/// ArenaStats accounting, SetInterner hash-consing (physical sharing, not
/// just equality), PointsToSolution's copy-on-write set handles, and the
/// end-to-end accounting invariant — tracked bitmap bytes return to the
/// pre-solve watermark after a governed solve trips mid-run and its
/// result is destroyed (no drift from exception-path destruction).
///
//===----------------------------------------------------------------------===//

#include "adt/ElementArena.h"
#include "adt/FaultInjector.h"
#include "adt/InternTable.h"
#include "adt/MemTracker.h"
#include "core/PointsToSolution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

using namespace ag;

namespace {

// --- ElementArena --------------------------------------------------------

TEST(ElementArena, RecyclesFreedBlocksBeforeGrowingSlabs) {
  ElementArena Arena(SparseBitVector::elementBytes());
  EXPECT_EQ(Arena.reservedBytes(), 0u);
  EXPECT_EQ(Arena.liveBlocks(), 0u);

  std::vector<void *> Blocks;
  for (int I = 0; I != 100; ++I)
    Blocks.push_back(Arena.allocate());
  EXPECT_EQ(Arena.liveBlocks(), 100u);
  uint64_t Reserved = Arena.reservedBytes();
  EXPECT_GE(Reserved, 100 * SparseBitVector::elementBytes());

  for (void *B : Blocks)
    Arena.deallocate(B);
  EXPECT_EQ(Arena.liveBlocks(), 0u);
  EXPECT_EQ(Arena.reservedBytes(), Reserved)
      << "slabs are retained for reuse, not returned per block";

  // Re-allocating the same count must come entirely from the free list.
  for (int I = 0; I != 100; ++I)
    Arena.allocate();
  EXPECT_EQ(Arena.liveBlocks(), 100u);
  EXPECT_EQ(Arena.reservedBytes(), Reserved);
}

TEST(ElementArena, GlobalStatsTrackSlabHighWaterMarks) {
  ArenaStats &Stats = ArenaStats::instance();
  Stats.resetPeaks();
  uint64_t Before = Stats.currentReservedBytes();
  {
    ElementArena Arena(SparseBitVector::elementBytes());
    std::vector<void *> Blocks;
    for (int I = 0; I != 500; ++I)
      Blocks.push_back(Arena.allocate());
    EXPECT_GT(Stats.currentReservedBytes(), Before);
    EXPECT_GE(Stats.peakReservedBytes(),
              Stats.currentReservedBytes());
    EXPECT_GT(Stats.peakSlabs(), 0u);
  }
  EXPECT_EQ(ArenaStats::instance().currentReservedBytes(), Before)
      << "arena destruction must return every slab's bytes";
}

// --- SetInterner ---------------------------------------------------------

SparseBitVector makeSet(std::initializer_list<uint32_t> Bits) {
  SparseBitVector V;
  for (uint32_t B : Bits)
    V.set(B);
  return V;
}

TEST(SetInterner, EqualContentYieldsOnePhysicalSet) {
  SetInterner In;
  auto A = In.intern(makeSet({1, 128, 4000}));
  auto B = In.intern(makeSet({1, 128, 4000}));
  auto C = In.intern(makeSet({1, 128, 4001}));
  EXPECT_EQ(A.get(), B.get()) << "equal sets must share storage";
  EXPECT_NE(A.get(), C.get());
  EXPECT_EQ(In.hits(), 1u);
  EXPECT_EQ(In.misses(), 2u);
  EXPECT_GT(In.dedupedBytes(), 0u);
}

TEST(SetInterner, HitConsumesTheOfferedSetImmediately) {
  SetInterner In;
  In.intern(makeSet({7, 70, 700}));
  SparseBitVector Dup = makeSet({7, 70, 700});
  uint64_t Live = MemTracker::instance().currentBytes(MemCategory::Bitmap);
  auto H = In.intern(std::move(Dup));
  EXPECT_LT(MemTracker::instance().currentBytes(MemCategory::Bitmap), Live)
      << "a hit must free the duplicate's elements, not park them";
  EXPECT_TRUE(Dup.empty()); // NOLINT: consumed on hit by contract.
  EXPECT_EQ(H->count(), 3u);
}

// --- PointsToSolution copy-on-write --------------------------------------

TEST(PointsToSolution, MutableSetDetachesSharedHandles) {
  PointsToSolution Sol(4);
  Sol.mutableSet(0).set(42);
  Sol.setSharedSet(1, Sol.sharedSet(0));
  ASSERT_EQ(Sol.sharedSet(0).get(), Sol.sharedSet(1).get());
  EXPECT_TRUE(Sol.pointsToObj(1, 42));

  // Writing through one holder must not disturb the other.
  Sol.mutableSet(1).set(43);
  EXPECT_NE(Sol.sharedSet(0).get(), Sol.sharedSet(1).get());
  EXPECT_TRUE(Sol.pointsToObj(1, 42));
  EXPECT_TRUE(Sol.pointsToObj(1, 43));
  EXPECT_FALSE(Sol.pointsToObj(0, 43));

  // A uniquely-held set mutates in place.
  const SparseBitVector *P = Sol.sharedSet(1).get();
  Sol.mutableSet(1).set(44);
  EXPECT_EQ(Sol.sharedSet(1).get(), P);
}

TEST(PointsToSolution, InternSharedDedupsEqualRepSets) {
  PointsToSolution Sol(6);
  for (NodeId V : {0u, 2u, 4u}) {
    Sol.mutableSet(V).set(100);
    Sol.mutableSet(V).set(200);
  }
  Sol.mutableSet(5).set(300);
  auto [Hits, Misses] = Sol.internShared();
  EXPECT_EQ(Hits, 2u);
  EXPECT_EQ(Misses, 2u);
  EXPECT_EQ(Sol.sharedSet(0).get(), Sol.sharedSet(2).get());
  EXPECT_EQ(Sol.sharedSet(0).get(), Sol.sharedSet(4).get());
  EXPECT_NE(Sol.sharedSet(0).get(), Sol.sharedSet(5).get());

  PointsToSolution::SharingSummary Sh = Sol.sharingSummary();
  EXPECT_EQ(Sh.Reps, 4u);
  EXPECT_EQ(Sh.PhysicalSets, 2u);
  EXPECT_LT(Sh.PhysicalBytes, Sh.RoutedBytes);

  // Interning must not change observable content.
  EXPECT_TRUE(Sol.pointsToObj(2, 100));
  EXPECT_TRUE(Sol.pointsToObj(4, 200));
  EXPECT_TRUE(Sol.pointsToObj(5, 300));
  EXPECT_FALSE(Sol.pointsToObj(5, 100));
}

// --- Accounting drift under governed trips -------------------------------

class MemKernelFault : public ::testing::Test {
protected:
  void TearDown() override { FaultInjector::instance().disarmAll(); }
};

TEST_F(MemKernelFault, TrippedSolveReturnsBytesToPreSolveWatermark) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 20;
  ConstraintSystem CS = generateBenchmark(Spec);

  for (SolverKind Kind : {SolverKind::LCD, SolverKind::LCDHCD}) {
    // Let some propagation happen before the latched allocation fault
    // surfaces, so arena-backed sets hold elements when the governor
    // unwinds the solver mid-run.
    FaultInjector::instance().armAfter(FaultSite::Allocation,
                                       /*Countdown=*/200);
    uint64_t Watermark =
        MemTracker::instance().currentBytes(MemCategory::Bitmap);
    uint64_t TotalWatermark = MemTracker::instance().currentBytesTotal();
    {
      SolveBudget B;
      B.CheckIntervalOps = 1;
      B.AllowFallback = false; // Keep the partial state: worst case for
                               // exception-path accounting.
      SolveResult R = solveGoverned(CS, Kind, B);
      ASSERT_EQ(R.Outcome, SolveOutcome::Partial)
          << solverKindName(Kind);
      EXPECT_EQ(R.St.code(), StatusCode::MemoryLimit);
    }
    FaultInjector::instance().disarmAll();
    EXPECT_EQ(MemTracker::instance().currentBytes(MemCategory::Bitmap),
              Watermark)
        << solverKindName(Kind)
        << ": tracked bitmap bytes drifted across a tripped solve";
    EXPECT_EQ(MemTracker::instance().currentBytesTotal(), TotalWatermark)
        << solverKindName(Kind);
  }
}

TEST_F(MemKernelFault, TrippedParallelSolveReturnsBytesToWatermark) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 20;
  ConstraintSystem CS = generateBenchmark(Spec);

  FaultInjector::instance().armAfter(FaultSite::Allocation,
                                     /*Countdown=*/200);
  uint64_t Watermark =
      MemTracker::instance().currentBytes(MemCategory::Bitmap);
  {
    SolveBudget B;
    B.CheckIntervalOps = 1;
    SolverOptions Opts;
    Opts.Threads = 4;
    SolveResult R = solveGoverned(CS, SolverKind::LCDHCD, B,
                                  PtsRepr::Bitmap, nullptr, Opts);
    ASSERT_NE(R.Outcome, SolveOutcome::Failed);
  }
  FaultInjector::instance().disarmAll();
  EXPECT_EQ(MemTracker::instance().currentBytes(MemCategory::Bitmap),
            Watermark)
      << "tracked bitmap bytes drifted across a tripped parallel solve";
}

} // namespace
