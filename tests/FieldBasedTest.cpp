//===- FieldBasedTest.cpp - Field-based frontend mode tests ---------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's footnote 2 benchmarks a field-*based* variant (every access
/// to a field `f` is one global variable `f`) to compare against Heintze &
/// Tardieu's original field-based numbers, while the evaluation proper is
/// field-insensitive because field-based "is unsound for C". These tests
/// pin down both the mode's semantics and the size reduction it buys.
///
//===----------------------------------------------------------------------===//

#include "frontend/ConstraintGen.h"

#include "solvers/Solve.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

GeneratedConstraints genWith(const std::string &Src, bool FieldBased) {
  GeneratedConstraints Out;
  std::string Error;
  FrontendOptions Options;
  Options.FieldBased = FieldBased;
  EXPECT_TRUE(generateConstraintsFromSource(Src, Out, Error, Options))
      << Error;
  return Out;
}

const char *TwoStructProgram = R"(
struct a_t { int *f; int *g; };
struct a_t x; struct a_t y;
int o1; int o2;
int *outx; int *outy;
void main() {
  x.f = &o1;
  y.f = &o2;
  outx = x.f;
  outy = y.f;
}
)";

TEST(FieldBased, SharedFieldVariableMergesAccesses) {
  GeneratedConstraints G = genWith(TwoStructProgram, /*FieldBased=*/true);
  PointsToSolution S = solve(G.CS, SolverKind::LCDHCD);
  NodeId OutX = G.Variables.at("outx"), OutY = G.Variables.at("outy");
  // One variable `f` stands for x.f and y.f: both outputs see both
  // targets — the unsoundness-for-structs the paper warns about shows up
  // as (here deliberate) conflation.
  EXPECT_TRUE(S.pointsToObj(OutX, G.Variables.at("o1")));
  EXPECT_TRUE(S.pointsToObj(OutX, G.Variables.at("o2")));
  EXPECT_TRUE(S.mayAlias(OutX, OutY));
  ASSERT_TRUE(G.Variables.count("field::f"));
}

TEST(FieldBased, InsensitiveModeKeepsStructsSeparate) {
  GeneratedConstraints G = genWith(TwoStructProgram, /*FieldBased=*/false);
  PointsToSolution S = solve(G.CS, SolverKind::LCDHCD);
  NodeId OutX = G.Variables.at("outx"), OutY = G.Variables.at("outy");
  // Field-insensitive conflates fields *within* one struct but keeps x
  // and y apart.
  EXPECT_TRUE(S.pointsToObj(OutX, G.Variables.at("o1")));
  EXPECT_FALSE(S.pointsToObj(OutX, G.Variables.at("o2")));
  EXPECT_FALSE(S.mayAlias(OutX, OutY));
}

TEST(FieldBased, ArrowAccessesShareTheFieldToo) {
  const char *Src = R"(
struct n { int *next; };
struct n a; struct n b;
struct n *pa; struct n *pb;
int t1; int t2;
int *r;
void main() {
  pa = &a; pb = &b;
  pa->next = &t1;
  b.next = &t2;
  r = pb->next;
}
)";
  GeneratedConstraints G = genWith(Src, /*FieldBased=*/true);
  PointsToSolution S = solve(G.CS, SolverKind::LCDHCD);
  NodeId R = G.Variables.at("r");
  // (*pa).next, b.next and (*pb).next are all `next`.
  EXPECT_TRUE(S.pointsToObj(R, G.Variables.at("t1")));
  EXPECT_TRUE(S.pointsToObj(R, G.Variables.at("t2")));
}

TEST(FieldBased, ReducesDereferenceCount) {
  // The paper: field-based "tends to decrease both the size of the input
  // ... and the number of dereferenced variables (an important indicator
  // of performance)".
  const char *Src = R"(
struct s { int *f; };
struct s *p; struct s *q; struct s a;
int x;
void main() {
  p = &a; q = &a;
  p->f = &x;
  q->f = p->f;
}
)";
  GeneratedConstraints Insensitive = genWith(Src, false);
  GeneratedConstraints Based = genWith(Src, true);
  auto countComplex = [](const ConstraintSystem &CS) {
    return CS.countKind(ConstraintKind::Load) +
           CS.countKind(ConstraintKind::Store);
  };
  EXPECT_LT(countComplex(Based.CS), countComplex(Insensitive.CS))
      << "field-based must remove dereferences";
}

TEST(FieldBased, AllSolversStillAgree) {
  GeneratedConstraints G = genWith(TwoStructProgram, /*FieldBased=*/true);
  PointsToSolution Oracle = solve(G.CS, SolverKind::Naive);
  for (SolverKind K : AllSolverKinds)
    EXPECT_TRUE(solve(G.CS, K) == Oracle) << solverKindName(K);
}

} // namespace
