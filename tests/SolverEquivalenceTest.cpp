//===- SolverEquivalenceTest.cpp - Cross-solver property tests ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load-bearing property of the whole reproduction: every algorithm —
/// HT, PKH, BLQ, LCD, HCD and every +HCD combination, under both points-to
/// representations, with and without OVS preprocessing — must produce
/// exactly the points-to solution of the naive Figure-1 oracle, on
/// randomized and program-shaped constraint systems.
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

/// Everything but the oracle itself.
std::vector<std::pair<SolverKind, PtsRepr>> allVariants() {
  std::vector<std::pair<SolverKind, PtsRepr>> Out;
  for (SolverKind K : AllSolverKinds) {
    Out.emplace_back(K, PtsRepr::Bitmap);
    if (K != SolverKind::BLQ && K != SolverKind::BLQHCD)
      Out.emplace_back(K, PtsRepr::Bdd);
  }
  return Out;
}

class RandomEquivalence : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomEquivalence, AllSolversMatchOracle) {
  RandomSpec Spec;
  Spec.Seed = GetParam();
  // Vary the shape with the seed so different regimes are covered.
  Spec.NumVars = 40 + (GetParam() * 13) % 80;
  Spec.NumObjs = 8 + (GetParam() * 7) % 24;
  Spec.NumCopies = 60 + (GetParam() * 29) % 120;
  Spec.NumLoads = 10 + (GetParam() * 11) % 30;
  Spec.NumStores = 10 + (GetParam() * 17) % 30;
  Spec.NumCycles = GetParam() % 6;
  ConstraintSystem CS = generateRandom(Spec);

  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  for (auto [Kind, Repr] : allVariants()) {
    SolverStats Stats;
    PointsToSolution S = solve(CS, Kind, Repr, &Stats);
    EXPECT_TRUE(S == Oracle)
        << solverKindName(Kind) << "/"
        << (Repr == PtsRepr::Bitmap ? "bitmap" : "bdd")
        << " diverges from the oracle (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalence,
                         testing::Range<uint64_t>(1, 21));

class RandomEquivalenceWithOvs : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomEquivalenceWithOvs, OvsPreservesEverySolversSolution) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 101;
  Spec.NumVars = 60;
  Spec.NumCopies = 140; // Copy-heavy: more substitution opportunities.
  Spec.NumCycles = 4;
  ConstraintSystem CS = generateRandom(Spec);

  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  EXPECT_LE(Ovs.Reduced.constraints().size(), CS.constraints().size());

  for (auto [Kind, Repr] : allVariants()) {
    PointsToSolution S =
        solve(Ovs.Reduced, Kind, Repr, nullptr, SolverOptions(), &Ovs.Rep);
    EXPECT_TRUE(S == Oracle)
        << solverKindName(Kind) << " after OVS diverges (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalenceWithOvs,
                         testing::Range<uint64_t>(1, 13));

TEST(BenchmarkEquivalence, ProgramShapedWorkloadAllSolversAgree) {
  BenchmarkSpec Spec;
  Spec.Name = "mini";
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 10;
  Spec.NumGlobals = 20;
  ConstraintSystem CS = generateBenchmark(Spec);
  ASSERT_GT(CS.constraints().size(), 100u);

  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  for (auto [Kind, Repr] : allVariants()) {
    PointsToSolution Plain = solve(CS, Kind, Repr);
    EXPECT_TRUE(Plain == Oracle) << solverKindName(Kind);
    PointsToSolution Reduced =
        solve(Ovs.Reduced, Kind, Repr, nullptr, SolverOptions(), &Ovs.Rep);
    EXPECT_TRUE(Reduced == Oracle) << solverKindName(Kind) << " +OVS";
  }
}

TEST(WorklistEquivalence, PolicyDoesNotAffectSolution) {
  RandomSpec Spec;
  Spec.Seed = 999;
  ConstraintSystem CS = generateRandom(Spec);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  for (WorklistPolicy P : {WorklistPolicy::Fifo, WorklistPolicy::Lrf,
                           WorklistPolicy::DividedLrf}) {
    SolverOptions Opts;
    Opts.Worklist = P;
    EXPECT_TRUE(solve(CS, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
                      Opts) == Oracle);
    EXPECT_TRUE(solve(CS, SolverKind::HCD, PtsRepr::Bitmap, nullptr,
                      Opts) == Oracle);
  }
}

TEST(DiffResolutionAblation, FullRescanStillCorrect) {
  RandomSpec Spec;
  Spec.Seed = 4242;
  Spec.NumLoads = 25;
  Spec.NumStores = 25;
  ConstraintSystem CS = generateRandom(Spec);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  SolverOptions Opts;
  Opts.DifferenceResolution = false;
  for (SolverKind K : {SolverKind::PKH, SolverKind::LCD, SolverKind::HCD,
                       SolverKind::LCDHCD})
    EXPECT_TRUE(solve(CS, K, PtsRepr::Bitmap, nullptr, Opts) == Oracle)
        << solverKindName(K) << " with full rescans";
}

TEST(LcdAblation, RetriggerSuppressionOffStillCorrect) {
  RandomSpec Spec;
  Spec.Seed = 1234;
  Spec.NumCycles = 6;
  ConstraintSystem CS = generateRandom(Spec);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  SolverOptions Opts;
  Opts.LcdEdgeOnce = false;
  EXPECT_TRUE(solve(CS, SolverKind::LCD, PtsRepr::Bitmap, nullptr, Opts) ==
              Oracle);
}

/// The parallel wavefront solver must produce bit-for-bit the sequential
/// solution at every thread count (the solved system has a unique least
/// fixpoint, and PointsToSolution::operator== compares expanded sets, so
/// representative choices cannot mask a divergence).
class ParallelEquivalence : public testing::TestWithParam<unsigned> {};

TEST_P(ParallelEquivalence, MatchesSequentialOnRandomSystems) {
  SolverOptions Par;
  Par.Threads = GetParam();
  for (uint64_t Seed : {1ull, 7ull, 13ull, 42ull}) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    Spec.NumVars = 40 + (Seed * 13) % 80;
    Spec.NumCopies = 60 + (Seed * 29) % 120;
    Spec.NumCycles = Seed % 6;
    ConstraintSystem CS = generateRandom(Spec);
    PointsToSolution Oracle = solve(CS, SolverKind::Naive);
    for (SolverKind K : {SolverKind::LCD, SolverKind::LCDHCD})
      EXPECT_TRUE(solve(CS, K, PtsRepr::Bitmap, nullptr, Par) == Oracle)
          << solverKindName(K) << " x" << GetParam() << " threads, seed "
          << Seed;
  }
}

TEST_P(ParallelEquivalence, MatchesSequentialOnProgramShapedWorkload) {
  BenchmarkSpec Spec;
  Spec.Name = "par-mini";
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 10;
  Spec.NumGlobals = 20;
  ConstraintSystem CS = generateBenchmark(Spec);

  PointsToSolution Sequential = solve(CS, SolverKind::LCDHCD);
  SolverOptions Par;
  Par.Threads = GetParam();
  EXPECT_TRUE(solve(CS, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
                    Par) == Sequential);

  // And through OVS seeding, the paper's full pipeline.
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  PointsToSolution Reduced = solve(Ovs.Reduced, SolverKind::LCDHCD,
                                   PtsRepr::Bitmap, nullptr, Par, &Ovs.Rep);
  EXPECT_TRUE(Reduced == Sequential);
}

TEST_P(ParallelEquivalence, GovernorTripFallbackMatchesSequential) {
  BenchmarkSpec Spec;
  Spec.Name = "par-budget";
  Spec.NumFunctions = 16;
  Spec.VarsPerFunction = 10;
  Spec.NumGlobals = 24;
  ConstraintSystem CS = generateBenchmark(Spec);

  SolveBudget Budget;
  Budget.MaxPropagations = 25; // Trips long before fixpoint.
  SolveResult Seq = solveGoverned(CS, SolverKind::LCDHCD, Budget);
  ASSERT_EQ(Seq.Outcome, SolveOutcome::Fallback);

  SolverOptions Par;
  Par.Threads = GetParam();
  SolveResult P = solveGoverned(CS, SolverKind::LCDHCD, Budget,
                                PtsRepr::Bitmap, nullptr, Par);
  EXPECT_EQ(P.Outcome, SolveOutcome::Fallback);
  EXPECT_TRUE(P.Sound);
  // The Steensgaard degradation path is deterministic and thread-free, so
  // the parallel trip must land on the identical fallback solution.
  EXPECT_TRUE(P.Solution == Seq.Solution);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEquivalence,
                         testing::Values(1u, 2u, 4u, 8u));

TEST(StatsSanity, CountersBehaveAsDocumented) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 8;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 12;
  ConstraintSystem CS = generateBenchmark(Spec);

  SolverStats Lcd, Hcd, Pkh, Naive;
  solve(CS, SolverKind::LCD, PtsRepr::Bitmap, &Lcd);
  solve(CS, SolverKind::HCD, PtsRepr::Bitmap, &Hcd);
  solve(CS, SolverKind::PKH, PtsRepr::Bitmap, &Pkh);
  solve(CS, SolverKind::Naive, PtsRepr::Bitmap, &Naive);

  EXPECT_EQ(Hcd.NodesSearched, 0u)
      << "standalone HCD never traverses the graph";
  EXPECT_EQ(Naive.NodesCollapsed, 0u) << "naive never collapses";
  EXPECT_GT(Pkh.NodesCollapsed, 0u) << "cycle-rich workload must collapse";
  EXPECT_GT(Lcd.Propagations, 0u);
  EXPECT_GE(Naive.Propagations, Lcd.Propagations)
      << "cycle collapse reduces propagation work";
  EXPECT_FALSE(Lcd.toString("lcd.").empty());
}

} // namespace
