//===- FuzzTest.cpp - Robustness fuzzing of the text interfaces -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized robustness tests: mutated constraint files and mini-C source
/// must never crash the parsers — they either parse (and then solve
/// without issue) or fail with a diagnostic.
///
//===----------------------------------------------------------------------===//

#include "adt/Rng.h"
#include "frontend/ConstraintGen.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

std::string mutate(std::string Text, Rng &R, int Edits) {
  for (int I = 0; I != Edits && !Text.empty(); ++I) {
    size_t Pos = R.nextBelow(Text.size());
    switch (R.nextBelow(4)) {
    case 0: // Flip a character.
      Text[Pos] = static_cast<char>(32 + R.nextBelow(95));
      break;
    case 1: // Delete a span.
      Text.erase(Pos, 1 + R.nextBelow(8));
      break;
    case 2: // Duplicate a span.
      Text.insert(Pos, Text.substr(Pos, 1 + R.nextBelow(8)));
      break;
    case 3: // Insert digits (ids are numeric).
      Text.insert(Pos, std::to_string(R.nextBelow(100000)));
      break;
    }
  }
  return Text;
}

class FuzzSeeds : public testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, MutatedConstraintFilesNeverCrash) {
  RandomSpec Spec;
  Spec.Seed = GetParam();
  Spec.NumVars = 20;
  std::string Base = generateRandom(Spec).serialize();
  Rng R(GetParam() * 37);
  for (int Trial = 0; Trial != 40; ++Trial) {
    std::string Text = mutate(Base, R, 1 + Trial % 6);
    ConstraintSystem CS;
    std::string Error;
    if (ConstraintSystem::parse(Text, CS, Error)) {
      // Anything that parses must solve cleanly.
      PointsToSolution S = solve(CS, SolverKind::LCDHCD);
      (void)S;
    } else {
      EXPECT_FALSE(Error.empty()) << "failures must carry a diagnostic";
    }
  }
}

TEST_P(FuzzSeeds, MutatedMiniCNeverCrashes) {
  const char *Base = R"(
struct s { struct s *next; int *p; };
struct s *head; int g;
int *grab(int *a) { return a ? a : &g; }
void main() {
  struct s *n;
  n = malloc(16);
  n->p = grab(&g);
  n->next = head;
  head = n;
}
)";
  Rng R(GetParam() * 41 + 1);
  for (int Trial = 0; Trial != 40; ++Trial) {
    std::string Text = mutate(Base, R, 1 + Trial % 8);
    GeneratedConstraints Out;
    std::string Error;
    if (generateConstraintsFromSource(Text, Out, Error)) {
      PointsToSolution S = solve(Out.CS, SolverKind::LCDHCD);
      (void)S;
    } else {
      EXPECT_FALSE(Error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, testing::Range<uint64_t>(1, 9));

} // namespace
