//===- QueryEngineTest.cpp - Query serving over snapshots -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// QueryEngine correctness against brute-force evaluation of the
/// underlying PointsToSolution, cache behaviour (representative-keyed
/// sharing, disabled-cache baseline, eviction), the batch API, the
/// function-pointer call graph, and the `ptatool serve` REPL end to end.
///
//===----------------------------------------------------------------------===//

#include "serve/QueryEngine.h"

#include "adt/Rng.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ag;

namespace {

Snapshot makeSnapshot(const ConstraintSystem &CS,
                      SolverKind Kind = SolverKind::LCDHCD) {
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution = solve(Ovs.Reduced, Kind, PtsRepr::Bitmap, nullptr,
                        SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  Snap.Kind = Kind;
  return Snap;
}

ConstraintSystem benchSystem() {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 20;
  return generateBenchmark(Spec);
}

TEST(QueryEngine, MatchesBruteForceOnGeneratedSystem) {
  Snapshot Snap = makeSnapshot(benchSystem());
  const PointsToSolution Expected = Snap.Solution; // Engine consumes Snap.
  const uint32_t N = Snap.CS.numNodes();
  QueryEngine Engine(std::move(Snap));

  for (NodeId V = 0; V != N; ++V)
    EXPECT_EQ(*Engine.pointsTo(V), Expected.pointsToVector(V)) << "node " << V;

  Rng R(7);
  for (int I = 0; I != 300; ++I) {
    NodeId P = static_cast<NodeId>(R.nextBelow(N));
    NodeId Q = static_cast<NodeId>(R.nextBelow(N));
    EXPECT_EQ(Engine.alias(P, Q), Expected.mayAlias(P, Q))
        << "alias(" << P << "," << Q << ")";
  }

  for (NodeId Obj = 0; Obj != std::min(N, 64u); ++Obj) {
    std::vector<NodeId> Brute;
    for (NodeId V = 0; V != N; ++V)
      if (Expected.pointsToObj(V, Obj))
        Brute.push_back(V);
    QueryEngine::IdList PB;
    ASSERT_TRUE(Engine.pointedBy(Obj, PB).ok());
    EXPECT_EQ(*PB, Brute) << "pointedBy(" << Obj << ")";
  }
}

TEST(QueryEngine, CalleesFiltersToFunctionObjects) {
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 1);
  NodeId G = CS.addFunction("g", 2);
  NodeId Fp = CS.addNode("fp");
  NodeId O = CS.addNode("o");
  CS.addAddressOf(Fp, F);
  CS.addAddressOf(Fp, G);
  CS.addAddressOf(Fp, O); // Data object: must not appear as a callee.
  QueryEngine Engine(makeSnapshot(CS));
  EXPECT_EQ(*Engine.callees(Fp), (std::vector<NodeId>{F, G}));
  EXPECT_EQ(*Engine.pointsTo(Fp), (std::vector<NodeId>{F, G, O}));
}

TEST(QueryEngine, CallGraphEdgesFromDereferencedFunctionPointers) {
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 1);
  NodeId G = CS.addFunction("g", 1);
  NodeId Fp = CS.addNode("fp");
  NodeId Arg = CS.addNode("arg");
  NodeId Ret = CS.addNode("ret");
  NodeId Plain = CS.addNode("plain"); // Points at g but is never deref'd
  CS.addAddressOf(Fp, F);             // at an offset: not a call site.
  CS.addAddressOf(Fp, G);
  CS.addAddressOf(Plain, G);
  // An indirect call through fp: store the argument at the parameter
  // slot, load the return slot.
  CS.addStore(Fp, Arg, ConstraintSystem::FunctionParamOffset);
  CS.addLoad(Ret, Fp, 1);
  QueryEngine Engine(makeSnapshot(CS));
  std::vector<std::pair<NodeId, NodeId>> Expected = {{Fp, F}, {Fp, G}};
  EXPECT_EQ(Engine.callGraph(), Expected);
}

TEST(QueryEngine, CacheIsKeyedOnRepresentatives) {
  // x and y form a copy cycle: the solve collapses them into one class,
  // so their pointsTo results share a single cache entry.
  ConstraintSystem CS;
  NodeId X = CS.addNode("x"), Y = CS.addNode("y"), O = CS.addNode("o");
  CS.addAddressOf(X, O);
  CS.addCopy(X, Y);
  CS.addCopy(Y, X);
  Snapshot Snap = makeSnapshot(CS, SolverKind::LCD);
  ASSERT_EQ(Snap.Solution.repOf(X), Snap.Solution.repOf(Y))
      << "test premise: the cycle must have been collapsed";
  QueryEngine Engine(std::move(Snap));

  EXPECT_EQ(*Engine.pointsTo(X), (std::vector<NodeId>{O}));
  CacheStats S1 = Engine.cacheStats();
  EXPECT_EQ(S1.Hits, 0u);
  EXPECT_EQ(S1.Misses, 1u);

  EXPECT_EQ(*Engine.pointsTo(Y), (std::vector<NodeId>{O}));
  CacheStats S2 = Engine.cacheStats();
  EXPECT_EQ(S2.Hits, 1u) << "class member must hit its rep's entry";
  EXPECT_EQ(S2.Misses, 1u);

  // Same canonicalization for alias verdicts, in either argument order.
  EXPECT_TRUE(Engine.alias(X, Y));
  EXPECT_TRUE(Engine.alias(Y, X));
  EXPECT_EQ(Engine.cacheStats().Hits, 2u);
}

TEST(QueryEngine, ZeroCapacityDisablesCaching) {
  QueryEngine::Options Opts;
  Opts.CacheCapacity = 0;
  QueryEngine Engine(makeSnapshot(benchSystem()), Opts);
  for (int Round = 0; Round != 3; ++Round)
    for (NodeId V = 0; V != 10; ++V)
      (void)Engine.pointsTo(V);
  CacheStats S = Engine.cacheStats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_GT(S.Misses, 0u);
}

TEST(QueryEngine, TinyCacheEvictsButStaysCorrect) {
  QueryEngine::Options Opts;
  Opts.CacheCapacity = 2; // One list entry, one alias entry.
  Opts.CacheShards = 1;
  Snapshot Snap = makeSnapshot(benchSystem());
  const PointsToSolution Expected = Snap.Solution;
  const uint32_t N = Snap.CS.numNodes();
  QueryEngine Engine(std::move(Snap), Opts);
  for (int Round = 0; Round != 2; ++Round)
    for (NodeId V = 0; V != N; ++V)
      EXPECT_EQ(*Engine.pointsTo(V), Expected.pointsToVector(V));
  CacheStats S = Engine.cacheStats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Entries, 2u);
}

TEST(QueryEngine, BatchMatchesIndividualQueries) {
  Snapshot Snap = makeSnapshot(benchSystem());
  const uint32_t N = Snap.CS.numNodes();
  QueryEngine Engine(std::move(Snap));
  Rng R(13);
  std::vector<std::pair<NodeId, NodeId>> Pairs;
  for (int I = 0; I != 100; ++I)
    Pairs.emplace_back(static_cast<NodeId>(R.nextBelow(N)),
                       static_cast<NodeId>(R.nextBelow(N)));
  std::vector<bool> Batch = Engine.aliasBatch(Pairs);
  ASSERT_EQ(Batch.size(), Pairs.size());
  for (size_t I = 0; I != Pairs.size(); ++I)
    EXPECT_EQ(Batch[I], Engine.alias(Pairs[I].first, Pairs[I].second)) << I;
}

#ifdef AG_PTATOOL_PATH

/// Runs ptatool with \p Args (redirections included) and returns its exit
/// code.
int runPtatool(const std::string &Args) {
  std::string Cmd = std::string(AG_PTATOOL_PATH) + " " + Args;
  int Raw = std::system(Cmd.c_str());
  return WEXITSTATUS(Raw);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

TEST(ServeRepl, EndToEnd) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "serve_repl.cons";
  std::string Snap = Dir + "serve_repl.snap";
  std::string InPath = Dir + "serve_repl.in";
  std::string OutPath = Dir + "serve_repl.out";

  // p -> {o}; q copies p; o points at nothing.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o"), Q = CS.addNode("q");
  CS.addAddressOf(P, O);
  CS.addCopy(Q, P);
  ASSERT_TRUE(CS.writeToFile(Cons));
  ASSERT_EQ(runPtatool("snapshot " + Cons + " " + Snap + " > /dev/null"), 0);

  std::ofstream(InPath) << "help\n"
                           "pts p\n"
                           "pts 2\n"
                           "alias p q\n"
                           "alias p o\n"
                           "aliasbatch p q o o\n"
                           "pointedby o\n"
                           "callees p\n"
                           "callgraph\n"
                           "stats\n"
                           "frobnicate\n"
                           "pts nosuchnode\n"
                           "alias p\n"
                           "quit\n";
  ASSERT_EQ(runPtatool("serve " + Snap + " < " + InPath + " > " + OutPath +
                       " 2> /dev/null"),
            0);

  std::string Out = slurp(OutPath);
  EXPECT_NE(Out.find("commands:"), std::string::npos);
  EXPECT_NE(Out.find("pts(p): " + std::to_string(O) + "\n"),
            std::string::npos);
  EXPECT_NE(Out.find("pts(2): " + std::to_string(O) + "\n"),
            std::string::npos)
      << "decimal ids must resolve too";
  EXPECT_NE(Out.find("alias(p,q) = yes"), std::string::npos);
  EXPECT_NE(Out.find("alias(p,o) = no"), std::string::npos);
  EXPECT_NE(Out.find("aliasbatch: yes no"), std::string::npos);
  EXPECT_NE(Out.find("pointedby(o): " + std::to_string(P) + " " +
                     std::to_string(Q) + "\n"),
            std::string::npos);
  EXPECT_NE(Out.find("callees(p):\n"), std::string::npos);
  EXPECT_NE(Out.find("callgraph: 0 edges"), std::string::npos);
  EXPECT_NE(Out.find("stats: hits"), std::string::npos);
  EXPECT_NE(Out.find("error: unknown command 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(Out.find("error: unknown node 'nosuchnode'"), std::string::npos);
  EXPECT_NE(Out.find("error: alias expects two nodes"), std::string::npos);
}

TEST(ServeRepl, EofExitsZeroAndCorruptSnapshotExitsError) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "serve_eof.cons";
  std::string Snap = Dir + "serve_eof.snap";
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o");
  CS.addAddressOf(P, O);
  ASSERT_TRUE(CS.writeToFile(Cons));
  ASSERT_EQ(runPtatool("snapshot " + Cons + " " + Snap + " > /dev/null"), 0);
  EXPECT_EQ(runPtatool("serve " + Snap + " < /dev/null > /dev/null"), 0);

  std::string Bad = Dir + "serve_eof.bad";
  std::ofstream(Bad) << "this is not a snapshot";
  EXPECT_EQ(
      runPtatool("serve " + Bad + " < /dev/null > /dev/null 2> /dev/null"),
      1);
  EXPECT_EQ(runPtatool("serve /nonexistent/missing.snap < /dev/null "
                       "> /dev/null 2> /dev/null"),
            1);
}

#endif // AG_PTATOOL_PATH

} // namespace
