//===- BddTest.cpp - Tests for the ROBDD package --------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

#include <bitset>
#include <functional>
#include <vector>

using namespace ag;

namespace {

/// Truth-table oracle: a function from assignments (bitmask over NumVars
/// variables, bit i = variable level i) to bool, represented as a bitset.
constexpr uint32_t OracleVars = 6;
using Table = std::bitset<1u << OracleVars>;

/// Evaluates a BDD on one assignment.
bool evalBdd(BddManager &Mgr, BddNodeRef R, uint32_t Assign) {
  while (R > BddTrue) {
    uint32_t Level = Mgr.level(R);
    R = (Assign >> Level) & 1 ? Mgr.high(R) : Mgr.low(R);
  }
  return R == BddTrue;
}

Table tableOf(BddManager &Mgr, const Bdd &B) {
  Table T;
  for (uint32_t A = 0; A != (1u << OracleVars); ++A)
    T[A] = evalBdd(Mgr, B.ref(), A);
  return T;
}

class BddOracleTest : public testing::Test {
protected:
  BddOracleTest() : Mgr(1024) { Mgr.setNumVars(OracleVars); }
  BddManager Mgr;
};

TEST_F(BddOracleTest, Terminals) {
  EXPECT_TRUE(tableOf(Mgr, Mgr.falseBdd()).none());
  EXPECT_TRUE(tableOf(Mgr, Mgr.trueBdd()).all());
}

TEST_F(BddOracleTest, SingleVariables) {
  for (uint32_t V = 0; V != OracleVars; ++V) {
    Table T = tableOf(Mgr, Mgr.var(V));
    Table N = tableOf(Mgr, Mgr.nvar(V));
    for (uint32_t A = 0; A != (1u << OracleVars); ++A) {
      EXPECT_EQ(T[A], ((A >> V) & 1) != 0);
      EXPECT_EQ(N[A], ((A >> V) & 1) == 0);
    }
  }
}

TEST_F(BddOracleTest, HashConsingCanonicity) {
  Bdd A = Mgr.bddAnd(Mgr.var(0), Mgr.var(1));
  Bdd B = Mgr.bddAnd(Mgr.var(1), Mgr.var(0));
  EXPECT_EQ(A.ref(), B.ref()) << "structurally equal BDDs share a node";
  Bdd C = Mgr.bddNot(Mgr.bddOr(Mgr.bddNot(Mgr.var(0)),
                               Mgr.bddNot(Mgr.var(1))));
  EXPECT_EQ(A.ref(), C.ref()) << "De Morgan must canonicalize";
}

/// Exhaustive random-formula check of every binary operation.
class BddRandomFormula : public testing::TestWithParam<uint64_t> {};

TEST_P(BddRandomFormula, OpsMatchTruthTables) {
  BddManager Mgr(1024);
  Mgr.setNumVars(OracleVars);
  Rng R(GetParam());

  // Build a pool of random formulas bottom-up, tracking oracle tables.
  std::vector<std::pair<Bdd, Table>> Pool;
  for (uint32_t V = 0; V != OracleVars; ++V)
    Pool.emplace_back(Mgr.var(V), tableOf(Mgr, Mgr.var(V)));
  Pool.emplace_back(Mgr.trueBdd(), tableOf(Mgr, Mgr.trueBdd()));
  Pool.emplace_back(Mgr.falseBdd(), tableOf(Mgr, Mgr.falseBdd()));

  for (int Step = 0; Step != 120; ++Step) {
    const auto &[A, TA] = Pool[R.nextBelow(Pool.size())];
    const auto &[B, TB] = Pool[R.nextBelow(Pool.size())];
    const auto &[C, TC] = Pool[R.nextBelow(Pool.size())];
    Bdd Result;
    Table Expected;
    switch (R.nextBelow(6)) {
    case 0:
      Result = Mgr.bddAnd(A, B);
      Expected = TA & TB;
      break;
    case 1:
      Result = Mgr.bddOr(A, B);
      Expected = TA | TB;
      break;
    case 2:
      Result = Mgr.bddXor(A, B);
      Expected = TA ^ TB;
      break;
    case 3:
      Result = Mgr.bddDiff(A, B);
      Expected = TA & ~TB;
      break;
    case 4:
      Result = Mgr.bddNot(A);
      Expected = ~TA;
      break;
    case 5:
      Result = Mgr.bddIte(A, B, C);
      Expected = (TA & TB) | (~TA & TC);
      break;
    }
    ASSERT_EQ(tableOf(Mgr, Result), Expected) << "step " << Step;
    Pool.emplace_back(std::move(Result), Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomFormula,
                         testing::Range<uint64_t>(1, 13));

/// Quantification against the oracle.
class BddQuantify : public testing::TestWithParam<uint64_t> {};

TEST_P(BddQuantify, ExistMatchesOracle) {
  BddManager Mgr(1024);
  Mgr.setNumVars(OracleVars);
  Rng R(GetParam() * 31);

  // Random formula.
  Bdd F = Mgr.falseBdd();
  Table TF;
  for (int I = 0; I != 10; ++I) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(1u << OracleVars));
    // Add the minterm for assignment A.
    Bdd Minterm = Mgr.trueBdd();
    for (uint32_t V = 0; V != OracleVars; ++V)
      Minterm = Mgr.bddAnd(Minterm,
                           (A >> V) & 1 ? Mgr.var(V) : Mgr.nvar(V));
    F = Mgr.bddOr(F, Minterm);
    TF[A] = true;
  }

  // Random variable subset to quantify.
  std::vector<uint32_t> Set;
  uint32_t Mask = 0;
  for (uint32_t V = 0; V != OracleVars; ++V)
    if (R.nextBool(0.5)) {
      Set.push_back(V);
      Mask |= 1u << V;
    }
  BddVarSetId SetId = Mgr.makeVarSet(Set);

  Bdd E = Mgr.exist(F, SetId);
  Table TE = tableOf(Mgr, E);
  for (uint32_t A = 0; A != (1u << OracleVars); ++A) {
    // exist: true iff some assignment to Set-vars makes F true.
    bool Expected = false;
    uint32_t Sub = Mask;
    for (;;) { // Enumerate submasks (including 0).
      if (TF[(A & ~Mask) | Sub])
        Expected = true;
      if (Sub == 0)
        break;
      Sub = (Sub - 1) & Mask;
    }
    ASSERT_EQ(TE[A], Expected) << "assignment " << A;
  }

  // relProd(F, G, S) == exist(S, F & G).
  Bdd G = Mgr.bddXor(Mgr.var(0), Mgr.var(OracleVars - 1));
  Bdd RP = Mgr.relProd(F, G, SetId);
  Bdd Manual = Mgr.exist(Mgr.bddAnd(F, G), SetId);
  EXPECT_EQ(RP.ref(), Manual.ref());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddQuantify,
                         testing::Range<uint64_t>(1, 13));

TEST(BddReplace, RenamesVariables) {
  BddManager Mgr(1024);
  Mgr.setNumVars(6);
  // Rename {0 -> 1, 2 -> 3, 4 -> 5}: order-preserving, targets unused.
  BddPairingId P = Mgr.makePairing({{0, 1}, {2, 3}, {4, 5}});
  Bdd F = Mgr.bddOr(Mgr.bddAnd(Mgr.var(0), Mgr.var(2)), Mgr.var(4));
  Bdd G = Mgr.replace(F, P);
  Bdd Expected =
      Mgr.bddOr(Mgr.bddAnd(Mgr.var(1), Mgr.var(3)), Mgr.var(5));
  EXPECT_EQ(G.ref(), Expected.ref());
}

TEST(BddCube, BuildsConjunctions) {
  BddManager Mgr(1024);
  Mgr.setNumVars(5);
  Bdd C = Mgr.cube({{0, true}, {2, false}, {4, true}});
  Bdd Manual = Mgr.bddAnd(Mgr.var(0),
                          Mgr.bddAnd(Mgr.nvar(2), Mgr.var(4)));
  EXPECT_EQ(C.ref(), Manual.ref());
  EXPECT_TRUE(Mgr.cube({}).isTrue());
}

TEST(BddSatCount, CountsAssignments) {
  BddManager Mgr(1024);
  Mgr.setNumVars(8);
  std::vector<uint32_t> All = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(Mgr.satCount(Mgr.trueBdd(), All), 256.0);
  EXPECT_DOUBLE_EQ(Mgr.satCount(Mgr.falseBdd(), All), 0.0);
  EXPECT_DOUBLE_EQ(Mgr.satCount(Mgr.var(3), All), 128.0);
  Bdd F = Mgr.bddAnd(Mgr.var(0), Mgr.bddOr(Mgr.var(1), Mgr.var(2)));
  EXPECT_DOUBLE_EQ(Mgr.satCount(F, All), 96.0); // 1/2 * 3/4 * 256.
  // Restricted universe.
  std::vector<uint32_t> Three = {0, 1, 2};
  EXPECT_DOUBLE_EQ(Mgr.satCount(F, Three), 3.0);
}

TEST(BddForEachSat, EnumeratesMinterms) {
  BddManager Mgr(1024);
  Mgr.setNumVars(4);
  Bdd F = Mgr.bddXor(Mgr.var(1), Mgr.var(3));
  std::vector<uint32_t> Vars = {1, 3};
  std::vector<std::vector<bool>> Seen;
  Mgr.forEachSat(F, Vars, [&](const std::vector<bool> &A) {
    Seen.push_back(A);
  });
  ASSERT_EQ(Seen.size(), 2u);
  EXPECT_EQ(Seen[0], (std::vector<bool>{false, true}));
  EXPECT_EQ(Seen[1], (std::vector<bool>{true, false}));
}

TEST(BddForEachSat, ExpandsFreeVariables) {
  BddManager Mgr(1024);
  Mgr.setNumVars(4);
  Bdd F = Mgr.var(2);
  // Universe includes unconstrained variable 0: both values enumerate.
  std::vector<uint32_t> Vars = {0, 2};
  int Count = 0;
  Mgr.forEachSat(F, Vars, [&](const std::vector<bool> &A) {
    EXPECT_TRUE(A[1]);
    ++Count;
  });
  EXPECT_EQ(Count, 2);
}

TEST(BddGc, CollectsDeadNodesAndKeepsLive) {
  BddManager Mgr(1024);
  Mgr.setNumVars(16);
  Bdd Keep = Mgr.bddAnd(Mgr.var(0), Mgr.var(1));
  {
    // Build lots of garbage.
    Bdd Junk = Mgr.trueBdd();
    for (uint32_t V = 0; V != 16; ++V)
      Junk = Mgr.bddXor(Junk, Mgr.var(V));
  }
  uint32_t Live = Mgr.countLiveNodes(); // Forces a GC.
  EXPECT_GE(Mgr.gcCount(), 1u);
  EXPECT_LT(Live, 32u) << "garbage must have been swept";
  // The kept BDD must still evaluate correctly after GC.
  EXPECT_EQ(Keep.ref(), Mgr.bddAnd(Mgr.var(0), Mgr.var(1)).ref());
}

TEST(BddGc, SurvivesHeavyChurn) {
  // Small initial capacity forces repeated GC and growth.
  BddManager Mgr(1024);
  Mgr.setNumVars(24);
  Rng R(7);
  Bdd Acc = Mgr.falseBdd();
  for (int I = 0; I != 2000; ++I) {
    Bdd M = Mgr.trueBdd();
    for (uint32_t V = 0; V != 24; ++V)
      if (R.nextBool(0.3))
        M = Mgr.bddAnd(M, R.nextBool(0.5) ? Mgr.var(V) : Mgr.nvar(V));
    Acc = Mgr.bddOr(Acc, M);
  }
  // Spot-check: Acc is a valid BDD (evaluation does not crash and agrees
  // with monotonicity: Acc must not be false after 2000 unions).
  EXPECT_FALSE(Acc.isFalse());
  EXPECT_GT(Mgr.gcCount(), 0u);
}

TEST(BddMemory, TracksTableBytes) {
  uint64_t Before =
      MemTracker::instance().currentBytes(MemCategory::BddTable);
  {
    BddManager Mgr(4096);
    EXPECT_GT(MemTracker::instance().currentBytes(MemCategory::BddTable),
              Before);
    EXPECT_GT(Mgr.memoryBytes(), 0u);
  }
  EXPECT_EQ(MemTracker::instance().currentBytes(MemCategory::BddTable),
            Before);
}

} // namespace
