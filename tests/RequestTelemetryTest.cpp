//===- RequestTelemetryTest.cpp - Wide events end to end ------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped telemetry through a real ServeSession: every executed
/// request emits exactly one well-formed "ag.events.v1" line with a unique
/// trace id, tier attribution reflects how the answer was produced
/// (cache_hit flips on a repeated query), `stats json` returns the
/// ag.metrics.v5 document, and a deadline-dropped request's wide event is
/// correlated — by trace id — with its slow-query log entry, which also
/// carries a FlightRecorder ring snapshot.
///
//===----------------------------------------------------------------------===//

#include "serve/ServeSession.h"

#include "constraints/OfflineVariableSubstitution.h"
#include "obs/EventLog.h"
#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"
#include "solvers/Solve.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace ag;

namespace {

Snapshot makeSnapshot(const ConstraintSystem &CS) {
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution = solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                        nullptr, SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  return Snap;
}

ConstraintSystem tinySystem() {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o"), Q = CS.addNode("q");
  CS.addAddressOf(P, O);
  CS.addCopy(Q, P);
  return CS;
}

std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  std::istringstream In(Text);
  for (std::string L; std::getline(In, L);)
    Out.push_back(L);
  return Out;
}

/// Extracts the string value of \p Key from one JSON event line (the
/// events are flat enough for textual extraction).
std::string jsonStr(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  At += Needle.size();
  size_t End = Line.find('"', At);
  return End == std::string::npos ? "" : Line.substr(At, End - At);
}

/// Extracts a numeric/bool value of \p Key.
std::string jsonRaw(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  At += Needle.size();
  size_t End = Line.find_first_of(",}", At);
  return End == std::string::npos ? "" : Line.substr(At, End - At);
}

TEST(RequestTelemetry, OneWellFormedEventPerRequestWithUniqueTraceIds) {
  std::ostringstream EventSink;
  obs::EventLog::Options EO;
  EO.ManualDrain = true;
  auto Events = std::make_shared<obs::EventLog>(EventSink, EO);

  ServeOptions Opts;
  Opts.Events = Events;
  {
    ServeSession S(makeSnapshot(tinySystem()), Opts);
    std::istringstream In("pts p\npts p\nalias p q\nbogus cmd\nstats\n"
                          "quit\n");
    std::ostringstream Out;
    EXPECT_EQ(S.run(In, Out), 0);
  }
  Events->drain();

  std::vector<std::string> L = lines(EventSink.str());
  ASSERT_EQ(L.size(), 6u) << "exactly one event per request line";
  std::set<std::string> Traces;
  for (const std::string &E : L) {
    EXPECT_EQ(jsonStr(E, "schema"), "ag.events.v1") << E;
    EXPECT_EQ(jsonStr(E, "trace").size(), 16u) << E;
    EXPECT_FALSE(jsonRaw(E, "micros").empty()) << E;
    Traces.insert(jsonStr(E, "trace"));
  }
  EXPECT_EQ(Traces.size(), 6u) << "trace ids must be unique per request";

  EXPECT_EQ(jsonStr(L[0], "cmd"), "pts");
  EXPECT_EQ(jsonStr(L[0], "class"), "query");
  EXPECT_EQ(jsonStr(L[0], "status"), "ok");
  EXPECT_EQ(jsonRaw(L[0], "result_size"), "1");
  EXPECT_EQ(jsonRaw(L[0], "cache_hit"), "false");
  // The repeated query is served from the LRU: the cache_hit bit flips.
  EXPECT_EQ(jsonRaw(L[1], "cache_hit"), "true");
  EXPECT_EQ(jsonStr(L[2], "cmd"), "alias");
  EXPECT_EQ(jsonStr(L[3], "cmd"), "bogus");
  EXPECT_EQ(jsonStr(L[3], "status"), "error");
  EXPECT_EQ(jsonStr(L[4], "class"), "admin");
  EXPECT_EQ(jsonStr(L[5], "cmd"), "quit");
}

TEST(RequestTelemetry, StatsJsonReturnsTheMetricsDocument) {
  obs::setMetricsEnabled(true);
  ServeSession S(makeSnapshot(tinySystem()));
  std::istringstream In("pts p\nstats json\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  const std::string Text = Out.str();
  EXPECT_NE(Text.find("\"ag.metrics.v5\""), std::string::npos)
      << "stats json must emit the renderJson document";
  EXPECT_NE(Text.find("\"serve.requests\""), std::string::npos);
  EXPECT_NE(Text.find("\"serve.latency.p99.query\""), std::string::npos);
  obs::setMetricsEnabled(false);
}

TEST(RequestTelemetry, DeadlineDropEventCorrelatesWithSlowQueryLog) {
  std::ostringstream EventSink, SlowSink;
  obs::EventLog::Options EO;
  EO.ManualDrain = true;
  auto Events = std::make_shared<obs::EventLog>(EventSink, EO);

  ServeOptions Opts;
  Opts.Events = Events;
  Opts.SlowOut = &SlowSink;
  Opts.QueueCapacity = 8;
  Opts.DeadlineSeconds = 0.05;
  {
    ServeSession S(makeSnapshot(tinySystem()), Opts);
    std::istringstream In("sleep 200\npts p\nquit\n");
    std::ostringstream Out;
    EXPECT_EQ(S.run(In, Out), 0);
    EXPECT_GE(S.counters().DeadlineDropped, 1u);
  }
  Events->drain();

  // Find the dropped request's wide event.
  std::string DroppedTrace;
  for (const std::string &E : lines(EventSink.str())) {
    // `quit` may be deadline-dropped too (it also waited behind the
    // sleep); correlate on the query specifically.
    if (jsonStr(E, "status") != "deadline" || jsonStr(E, "cmd") != "pts")
      continue;
    // The event's latency is the time the client actually waited, which
    // exceeded the 50 ms deadline.
    EXPECT_GE(std::stoull(jsonRaw(E, "micros")), 50000u) << E;
    DroppedTrace = jsonStr(E, "trace");
  }
  ASSERT_FALSE(DroppedTrace.empty())
      << "the deadline drop must emit a wide event; events:\n"
      << EventSink.str();

  // The slow-query log captured the same event (same trace id) plus a
  // flight-ring snapshot with the absolute-epoch header.
  const std::string Slow = SlowSink.str();
  EXPECT_NE(Slow.find("slow-query: "), std::string::npos) << Slow;
  EXPECT_NE(Slow.find(DroppedTrace), std::string::npos)
      << "slow log entry must carry the dropped request's trace id";
  EXPECT_NE(Slow.find("flight snapshot:"), std::string::npos);
  EXPECT_NE(Slow.find("epoch_ms="), std::string::npos)
      << "flight dump must carry the absolute epoch header";
}

TEST(RequestTelemetry, SlowMillisThresholdCapturesSlowRequests) {
  std::ostringstream SlowSink;
  ServeOptions Opts;
  Opts.SlowMillis = 10; // `sleep 50` must trip the latency trigger.
  Opts.SlowOut = &SlowSink;
  ServeSession S(makeSnapshot(tinySystem()), Opts);
  std::istringstream In("pts p\nsleep 50\nquit\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  const std::string Slow = SlowSink.str();
  EXPECT_NE(Slow.find("slow-query: "), std::string::npos) << Slow;
  EXPECT_NE(Slow.find("\"cmd\":\"sleep\""), std::string::npos)
      << "only the slow request may be captured: " << Slow;
  EXPECT_EQ(Slow.find("\"cmd\":\"pts\""), std::string::npos)
      << "a fast request must not hit the slow log: " << Slow;
}

} // namespace
