//===- OvsTest.cpp - Tests for offline variable substitution --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"

#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

TEST(Ovs, MergesCopyChains) {
  // b = a; c = b; d = c — all pointer-equivalent to a's value flow.
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c"),
         D = CS.addNode("d"), O = CS.addNode("o");
  CS.addAddressOf(A, O);
  CS.addCopy(B, A);
  CS.addCopy(C, B);
  CS.addCopy(D, C);
  OvsResult R = runOfflineVariableSubstitution(CS);
  // a,b,c,d all have label {adr(o)}: one representative.
  EXPECT_EQ(R.Rep[B], R.Rep[A]);
  EXPECT_EQ(R.Rep[C], R.Rep[A]);
  EXPECT_EQ(R.Rep[D], R.Rep[A]);
  EXPECT_EQ(R.NumMerged, 3u);
  EXPECT_FALSE(R.IsBottom[O]) << "address-taken nodes are indirect";
  // The reduced system needs only the one address-of constraint.
  EXPECT_EQ(R.Reduced.constraints().size(), 1u);
}

TEST(Ovs, MergesCopyCyclesEvenWhenAddressTaken) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), P = CS.addNode("p");
  CS.addCopy(B, A);
  CS.addCopy(A, B);
  CS.addAddressOf(P, A); // a is address-taken (indirect).
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_EQ(R.Rep[A], R.Rep[B]) << "copy cycles always merge";
  EXPECT_FALSE(R.IsBottom[A]);
}

TEST(Ovs, DoesNotMergeDistinctPointers) {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), Q = CS.addNode("q"), O1 = CS.addNode("o1"),
         O2 = CS.addNode("o2");
  CS.addAddressOf(P, O1);
  CS.addAddressOf(Q, O2);
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_NE(R.Rep[P], R.Rep[Q]);
}

TEST(Ovs, MergesSameSingletonPointers) {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), Q = CS.addNode("q"), O = CS.addNode("o");
  CS.addAddressOf(P, O);
  CS.addAddressOf(Q, O);
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_EQ(R.Rep[P], R.Rep[Q])
      << "identical singleton points-to sets are pointer-equivalent";
}

TEST(Ovs, BottomDetection) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), O = CS.addNode("o");
  NodeId Dead = CS.addNode("dead"), Dead2 = CS.addNode("dead2");
  CS.addAddressOf(A, O);
  CS.addCopy(B, Dead);   // b copies from a provably-empty var.
  CS.addCopy(Dead2, Dead);
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_TRUE(R.IsBottom[Dead]);
  EXPECT_TRUE(R.IsBottom[Dead2]);
  EXPECT_TRUE(R.IsBottom[B]);
  EXPECT_FALSE(R.IsBottom[A]);
  EXPECT_FALSE(R.IsBottom[O])
      << "address-taken nodes are conservatively indirect, not bottom";
  // The copy constraints from bottom must be dropped.
  EXPECT_EQ(R.Reduced.constraints().size(), 1u);
}

TEST(Ovs, AddressTakenNodesAreNotBottom) {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o");
  CS.addAddressOf(P, O);
  CS.addStore(P, P); // o can receive through the store.
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_FALSE(R.IsBottom[O]);
}

TEST(Ovs, LoadsGiveRefLabels) {
  // x = *p and y = *p are pointer-equivalent; z = *q is not.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), Q = CS.addNode("q");
  NodeId X = CS.addNode("x"), Y = CS.addNode("y"), Z = CS.addNode("z");
  NodeId O = CS.addNode("o"), O2 = CS.addNode("o2");
  CS.addAddressOf(P, O);
  CS.addAddressOf(Q, O2);
  CS.addLoad(X, P);
  CS.addLoad(Y, P);
  CS.addLoad(Z, Q);
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_EQ(R.Rep[X], R.Rep[Y]);
  EXPECT_NE(R.Rep[X], R.Rep[Z]);
}

TEST(Ovs, ReductionRatioOnBenchmarkWorkload) {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 40;
  Spec.VarsPerFunction = 16;
  Spec.NumGlobals = 60;
  ConstraintSystem CS = generateBenchmark(Spec);
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_LT(R.Reduced.constraints().size(), CS.constraints().size())
      << "OVS must reduce a program-shaped workload";
  EXPECT_GT(R.NumMerged, 0u);
}

TEST(Ovs, SizedNodeSpansAreIndirect) {
  // Address of a 3-slot object: interior slots must not be merged or
  // marked bottom (they can receive via offset stores).
  ConstraintSystem CS;
  NodeId P = CS.addNode("p");
  NodeId S = CS.addNode("s", 3);
  CS.addAddressOf(P, S);
  NodeId V = CS.addNode("v"), O = CS.addNode("o");
  CS.addAddressOf(V, O);
  CS.addStore(P, V, 2); // *(p+2) = v writes into s+2.
  OvsResult R = runOfflineVariableSubstitution(CS);
  EXPECT_FALSE(R.IsBottom[S + 2]);
  EXPECT_EQ(R.Rep[S + 2], S + 2) << "indirect slots keep their identity";
}

TEST(Ovs, IdempotentOnReducedSystem) {
  RandomSpec Spec;
  Spec.Seed = 77;
  ConstraintSystem CS = generateRandom(Spec);
  OvsResult First = runOfflineVariableSubstitution(CS);
  OvsResult Second = runOfflineVariableSubstitution(First.Reduced);
  // A second pass may still merge a little (ref labels become comparable
  // after rewriting), but must never grow the system.
  EXPECT_LE(Second.Reduced.constraints().size(),
            First.Reduced.constraints().size());
}

/// Solution preservation on random systems (invariant 3 of DESIGN.md) is
/// covered by SolverEquivalenceTest; here a direct mini-check with the
/// naive solver only, including bottom expansion.
TEST(Ovs, SolutionPreservedIncludingBottoms) {
  RandomSpec Spec;
  Spec.Seed = 31337;
  Spec.NumVars = 50;
  Spec.NumCopies = 120;
  ConstraintSystem CS = generateRandom(Spec);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  OvsResult R = runOfflineVariableSubstitution(CS);
  PointsToSolution Reduced = solve(R.Reduced, SolverKind::Naive,
                                   PtsRepr::Bitmap, nullptr,
                                   SolverOptions(), &R.Rep);
  ASSERT_TRUE(Reduced == Oracle);
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    if (R.IsBottom[V])
      EXPECT_TRUE(Oracle.pointsTo(V).empty())
          << "bottom claim must be sound for node " << V;
}

} // namespace
