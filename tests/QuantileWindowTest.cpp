//===- QuantileWindowTest.cpp - Sliding-window quantile sketch ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QuantileWindow's accuracy and concurrency contracts: log-linear
/// buckets (3 sub-bucket bits) bound the relative error of any reported
/// quantile at 12.5%, verified against exact sorted percentiles on
/// randomized inputs; concurrent recording is lock-free and TSan-clean;
/// and the LatencyTracker publishes its quantiles into the registry's
/// serve.latency.* gauges in class-major order.
///
//===----------------------------------------------------------------------===//

#include "obs/QuantileWindow.h"

#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

using namespace ag;

namespace {

/// Exact quantile with the same rank convention the window uses
/// (rank = ceil(Q * N), 1-based).
uint64_t exactQuantile(std::vector<uint64_t> Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  uint64_t Rank = uint64_t(Q * double(Sorted.size()));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Sorted.size())
    Rank = Sorted.size();
  return Sorted[size_t(Rank - 1)];
}

TEST(QuantileWindow, BucketUpperBoundsValueWithinRelativeError) {
  std::mt19937_64 Rng(0x5eed);
  for (int I = 0; I != 20000; ++I) {
    // Spread across the full magnitude range, not just small values.
    uint64_t V = Rng() >> (Rng() % 64);
    unsigned B = obs::QuantileWindow::bucketOf(V);
    ASSERT_LT(B, obs::QuantileWindow::NumBuckets);
    uint64_t Upper = obs::QuantileWindow::bucketUpper(B);
    ASSERT_GE(Upper, V) << "bucket upper bound must not undershoot";
    // Relative error bound: upper <= V * (1 + 2^-SubBits), i.e. 12.5%.
    ASSERT_LE(double(Upper), double(V) * 1.125 + 1.0) << "V=" << V;
    if (B + 1 < obs::QuantileWindow::NumBuckets) {
      ASSERT_LT(Upper, obs::QuantileWindow::bucketUpper(B + 1))
          << "bucket uppers must be strictly increasing";
    }
  }
}

TEST(QuantileWindow, RandomizedOracleMatchesExactPercentiles) {
  std::mt19937_64 Rng(0xab5c0de);
  // One huge slot so nothing rotates out mid-test.
  obs::QuantileWindow W(/*SlotNanos=*/uint64_t(1) << 62);
  for (int Trial = 0; Trial != 5; ++Trial) {
    W.reset();
    std::vector<uint64_t> Values;
    // Mix of distributions: uniform small, log-uniform large, constants.
    const size_t N = 4000;
    for (size_t I = 0; I != N; ++I) {
      uint64_t V;
      switch (Rng() % 3) {
      case 0:
        V = Rng() % 1000; // Fast requests, exact bucket range.
        break;
      case 1:
        V = (uint64_t(1) << (Rng() % 40)) + (Rng() % 1000); // Heavy tail.
        break;
      default:
        V = 42; // A spike of identical values.
        break;
      }
      Values.push_back(V);
      W.record(V);
    }
    EXPECT_EQ(W.count(), Values.size());
    std::sort(Values.begin(), Values.end());
    for (double Q : {0.50, 0.90, 0.99}) {
      uint64_t Exact = exactQuantile(Values, Q);
      uint64_t Approx = W.quantile(Q);
      // The sketch reports its bucket's upper bound, so it may only
      // overshoot, and by at most the bucket width (12.5% relative,
      // plus 1 for integer rounding at the small end).
      EXPECT_GE(Approx, Exact) << "q=" << Q;
      EXPECT_LE(double(Approx), double(Exact) * 1.13 + 1.0) << "q=" << Q;
    }
  }
}

TEST(QuantileWindow, EmptyWindowReportsZero) {
  obs::QuantileWindow W;
  EXPECT_EQ(W.count(), 0u);
  EXPECT_EQ(W.quantile(0.5), 0u);
  EXPECT_EQ(W.quantile(0.99), 0u);
}

TEST(QuantileWindow, ConcurrentRecordingLosesNothing) {
  obs::QuantileWindow W(/*SlotNanos=*/uint64_t(1) << 62);
  constexpr unsigned Threads = 4, PerThread = 20000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&W, T] {
      std::mt19937_64 Rng(T + 1);
      for (unsigned I = 0; I != PerThread; ++I)
        W.record(Rng() % 100000);
    });
  for (std::thread &Worker : Workers)
    Worker.join();
  // One giant slot: nothing can rotate out, so every record must count.
  EXPECT_EQ(W.count(), uint64_t(Threads) * PerThread);
  EXPECT_GT(W.quantile(0.99), 0u);
}

TEST(QuantileWindow, LatencyTrackerPublishesClassedGauges) {
  obs::setMetricsEnabled(true);
  auto &Reg = obs::MetricsRegistry::instance();
  Reg.reset();
  auto &Tracker = obs::LatencyTracker::instance();
  Tracker.reset();
  for (uint64_t I = 1; I <= 100; ++I)
    Tracker.record(obs::CommandClass::Query, I);
  Tracker.record(obs::CommandClass::Admin, 7);
  Tracker.publishGauges();
  uint64_t P50 = Reg.gaugeValue(obs::Gauge::ServeLatencyP50Query);
  uint64_t P99 = Reg.gaugeValue(obs::Gauge::ServeLatencyP99Query);
  EXPECT_GE(P50, 50u);
  EXPECT_LE(double(P50), 50.0 * 1.13 + 1.0);
  EXPECT_GE(P99, 99u);
  EXPECT_LE(double(P99), 99.0 * 1.13 + 1.0);
  EXPECT_GE(P99, P50) << "quantiles must be monotone";
  EXPECT_GE(Reg.gaugeValue(obs::Gauge::ServeLatencyP50Admin), 7u);
  EXPECT_EQ(Reg.gaugeValue(obs::Gauge::ServeLatencyP50Mutate), 0u)
      << "no mutate-class requests were recorded";
  Tracker.reset();
  Reg.reset();
  obs::setMetricsEnabled(false);
}

} // namespace
