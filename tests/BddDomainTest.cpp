//===- BddDomainTest.cpp - Tests for finite-domain BDD encoding -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "bdd/BddDomain.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace ag;

namespace {

TEST(BddDomains, LevelsInterleave) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {256, 256, 256});
  // 8 bits each, three domains: bit j of domain d at level 3j + d.
  for (unsigned D = 0; D != 3; ++D) {
    const std::vector<uint32_t> &L = Doms.levels(D);
    ASSERT_EQ(L.size(), 8u);
    for (uint32_t J = 0; J != 8; ++J)
      EXPECT_EQ(L[J], J * 3 + D);
  }
  EXPECT_EQ(Mgr.numVars(), 24u);
}

TEST(BddDomains, DifferentSizesShareBitPitch) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {1000, 4});
  EXPECT_EQ(Doms.levels(0).size(), 10u);
  EXPECT_EQ(Doms.levels(1).size(), 2u);
  EXPECT_EQ(Doms.size(0), 1000u);
}

TEST(BddDomains, ElementEncodeDecodeRoundTrip) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {300});
  for (uint64_t V : {0ull, 1ull, 2ull, 127ull, 128ull, 255ull, 299ull}) {
    Bdd E = Doms.element(0, V);
    std::vector<uint64_t> Elems;
    Doms.forEachElement(E, 0, [&](uint64_t X) { Elems.push_back(X); });
    ASSERT_EQ(Elems.size(), 1u) << V;
    EXPECT_EQ(Elems[0], V);
    EXPECT_EQ(Doms.countElements(E, 0), 1u);
  }
}

TEST(BddDomains, SetSemantics) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {64});
  Rng R(9);
  Bdd Set = Mgr.falseBdd();
  std::set<uint64_t> Oracle;
  for (int I = 0; I != 40; ++I) {
    uint64_t V = R.nextBelow(64);
    Set = Mgr.bddOr(Set, Doms.element(0, V));
    Oracle.insert(V);
  }
  EXPECT_EQ(Doms.countElements(Set, 0), Oracle.size());
  std::set<uint64_t> Seen;
  Doms.forEachElement(Set, 0, [&](uint64_t X) { Seen.insert(X); });
  EXPECT_EQ(Seen, Oracle);
}

TEST(BddDomains, PairsAndRelations) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {16, 16});
  Bdd Rel = Mgr.falseBdd();
  std::set<std::pair<uint64_t, uint64_t>> Oracle;
  Rng R(21);
  for (int I = 0; I != 25; ++I) {
    uint64_t A = R.nextBelow(16), B = R.nextBelow(16);
    Rel = Mgr.bddOr(Rel, Mgr.bddAnd(Doms.element(0, A),
                                    Doms.element(1, B)));
    Oracle.emplace(A, B);
  }
  EXPECT_EQ(Doms.countPairs(Rel, 0, 1), Oracle.size());
  std::set<std::pair<uint64_t, uint64_t>> Seen;
  Doms.forEachPair(Rel, 0, 1, [&](uint64_t A, uint64_t B) {
    Seen.emplace(A, B);
  });
  EXPECT_EQ(Seen, Oracle);
}

TEST(BddDomains, PairingRenamesDomains) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {32, 32});
  Bdd E0 = Doms.element(0, 13);
  Bdd E1 = Doms.element(1, 13);
  Bdd Renamed = Mgr.replace(E0, Doms.pairing(0, 1));
  EXPECT_EQ(Renamed.ref(), E1.ref());
}

TEST(BddDomains, QuantifyOneDomainOfARelation) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {8, 8});
  // Rel = {(1,5), (2,5), (2,6)}; exist domain 0 -> {5, 6}.
  Bdd Rel = Mgr.falseBdd();
  for (auto [A, B] : {std::pair{1, 5}, {2, 5}, {2, 6}})
    Rel = Mgr.bddOr(Rel, Mgr.bddAnd(Doms.element(0, A),
                                    Doms.element(1, B)));
  Bdd Proj = Mgr.exist(Rel, Doms.varSet(0));
  std::set<uint64_t> Seen;
  Doms.forEachElement(Proj, 1, [&](uint64_t X) { Seen.insert(X); });
  EXPECT_EQ(Seen, (std::set<uint64_t>{5, 6}));
}

TEST(BddDomains, RangeConstraint) {
  BddManager Mgr(1024);
  BddDomains Doms(Mgr, {10}); // 4 bits encode 0..15; only 0..9 valid.
  Bdd Range = Doms.rangeConstraint(0);
  EXPECT_EQ(Doms.countElements(Range, 0), 10u);
  for (uint64_t V = 0; V != 10; ++V)
    EXPECT_FALSE(Mgr.bddAnd(Range, Doms.element(0, V)).isFalse()) << V;
}

} // namespace
