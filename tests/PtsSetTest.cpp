//===- PtsSetTest.cpp - Points-to set policy tests ------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed tests run against both points-to set policies: the two
/// representations must behave identically as sets (invariant 5 of
/// DESIGN.md), so every test here is representation-generic.
///
//===----------------------------------------------------------------------===//

#include "core/PtsSet.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace ag;

namespace {

template <typename Policy> class PtsSetTyped : public testing::Test {
protected:
  PtsSetTyped() : Ctx(4096) {}
  typename Policy::Context Ctx;
};

using Policies = testing::Types<BitmapPtsPolicy, BddPtsPolicy>;
TYPED_TEST_SUITE(PtsSetTyped, Policies);

TYPED_TEST(PtsSetTyped, EmptyBasics) {
  typename TypeParam::Set S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(this->Ctx), 0u);
  EXPECT_FALSE(S.contains(this->Ctx, 7));
  int Count = 0;
  S.forEach(this->Ctx, [&](NodeId) { ++Count; });
  EXPECT_EQ(Count, 0);
}

TYPED_TEST(PtsSetTyped, InsertReportsChange) {
  typename TypeParam::Set S;
  EXPECT_TRUE(S.insert(this->Ctx, 42));
  EXPECT_FALSE(S.insert(this->Ctx, 42));
  EXPECT_TRUE(S.insert(this->Ctx, 7));
  EXPECT_TRUE(S.contains(this->Ctx, 42));
  EXPECT_TRUE(S.contains(this->Ctx, 7));
  EXPECT_FALSE(S.contains(this->Ctx, 8));
  EXPECT_EQ(S.size(this->Ctx), 2u);
}

TYPED_TEST(PtsSetTyped, UnionWith) {
  typename TypeParam::Set A, B;
  A.insert(this->Ctx, 1);
  A.insert(this->Ctx, 2);
  B.insert(this->Ctx, 2);
  B.insert(this->Ctx, 3000);
  EXPECT_TRUE(A.unionWith(this->Ctx, B));
  EXPECT_FALSE(A.unionWith(this->Ctx, B)) << "idempotent";
  EXPECT_EQ(A.size(this->Ctx), 3u);
  EXPECT_TRUE(A.contains(this->Ctx, 3000));
  // Union with an empty (default) set is a no-op.
  typename TypeParam::Set Empty;
  EXPECT_FALSE(A.unionWith(this->Ctx, Empty));
}

TYPED_TEST(PtsSetTyped, IntersectWith) {
  typename TypeParam::Set A, B;
  for (NodeId V : {1u, 2u, 3u, 100u})
    A.insert(this->Ctx, V);
  for (NodeId V : {2u, 100u, 999u})
    B.insert(this->Ctx, V);
  EXPECT_TRUE(A.intersectWith(this->Ctx, B));
  EXPECT_EQ(A.size(this->Ctx), 2u);
  EXPECT_TRUE(A.contains(this->Ctx, 2));
  EXPECT_TRUE(A.contains(this->Ctx, 100));
  typename TypeParam::Set Empty;
  EXPECT_TRUE(A.intersectWith(this->Ctx, Empty));
  EXPECT_TRUE(A.empty());
}

TYPED_TEST(PtsSetTyped, EqualsIsStructural) {
  typename TypeParam::Set A, B;
  EXPECT_TRUE(A.equals(this->Ctx, B)) << "two empties are equal";
  A.insert(this->Ctx, 5);
  EXPECT_FALSE(A.equals(this->Ctx, B));
  B.insert(this->Ctx, 5);
  EXPECT_TRUE(A.equals(this->Ctx, B));
  A.insert(this->Ctx, 6);
  B.insert(this->Ctx, 7);
  EXPECT_FALSE(A.equals(this->Ctx, B));
}

TYPED_TEST(PtsSetTyped, ForEachVisitsSorted) {
  typename TypeParam::Set S;
  for (NodeId V : {900u, 3u, 77u, 4000u})
    S.insert(this->Ctx, V);
  std::vector<NodeId> Seen;
  S.forEach(this->Ctx, [&](NodeId V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, (std::vector<NodeId>{3, 77, 900, 4000}));
}

TYPED_TEST(PtsSetTyped, ForEachDiff) {
  typename TypeParam::Set S, Exclude;
  for (NodeId V : {1u, 2u, 3u, 4u})
    S.insert(this->Ctx, V);
  Exclude.insert(this->Ctx, 2);
  Exclude.insert(this->Ctx, 4);
  Exclude.insert(this->Ctx, 99); // Not in S: irrelevant.
  std::vector<NodeId> Seen;
  S.forEachDiff(this->Ctx, Exclude,
                [&](NodeId V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, (std::vector<NodeId>{1, 3}));
  // Diff against empty = full iteration.
  typename TypeParam::Set Empty;
  Seen.clear();
  S.forEachDiff(this->Ctx, Empty, [&](NodeId V) { Seen.push_back(V); });
  EXPECT_EQ(Seen.size(), 4u);
}

TYPED_TEST(PtsSetTyped, ToBitmapRoundTrip) {
  typename TypeParam::Set S;
  for (NodeId V : {0u, 64u, 129u, 4000u})
    S.insert(this->Ctx, V);
  SparseBitVector Bits;
  S.toBitmap(this->Ctx, Bits);
  EXPECT_EQ(Bits.count(), 4u);
  for (NodeId V : {0u, 64u, 129u, 4000u})
    EXPECT_TRUE(Bits.test(V));
}

TYPED_TEST(PtsSetTyped, ClearAndFree) {
  typename TypeParam::Set S;
  S.insert(this->Ctx, 10);
  S.clearAndFree(this->Ctx);
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(this->Ctx, 10)) << "reusable after clear";
}

TYPED_TEST(PtsSetTyped, RandomizedAgainstStdSet) {
  Rng R(99);
  typename TypeParam::Set S;
  std::set<NodeId> Oracle;
  for (int Step = 0; Step != 600; ++Step) {
    NodeId V = static_cast<NodeId>(R.nextBelow(4096));
    switch (R.nextBelow(3)) {
    case 0:
      EXPECT_EQ(S.insert(this->Ctx, V), Oracle.insert(V).second);
      break;
    case 1:
      EXPECT_EQ(S.contains(this->Ctx, V), Oracle.count(V) > 0);
      break;
    case 2:
      EXPECT_EQ(S.size(this->Ctx), Oracle.size());
      break;
    }
  }
  std::vector<NodeId> Seen;
  S.forEach(this->Ctx, [&](NodeId V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, std::vector<NodeId>(Oracle.begin(), Oracle.end()));
}

TEST(BddPtsSpecific, EqualityIsPointerEquality) {
  // The property LCD exploits: with hash-consing, two equal sets share a
  // node, so the equality check is O(1) — build the same set two ways.
  BddPtsPolicy::Context Ctx(1024);
  BddPtsPolicy::Set A, B;
  for (NodeId V : {5u, 10u, 15u})
    A.insert(Ctx, V);
  for (NodeId V : {15u, 5u, 10u})
    B.insert(Ctx, V);
  EXPECT_TRUE(A.equals(Ctx, B));
}

} // namespace
