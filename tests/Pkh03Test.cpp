//===- Pkh03Test.cpp - Pearce 2003 solver tests ---------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "solvers/Pkh03Solver.h"

#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

template <typename Policy>
PointsToSolution runPkh03(const ConstraintSystem &CS,
                          SolverStats *StatsOut = nullptr) {
  SolverStats Local;
  Pkh03Solver<Policy> Solver(CS, StatsOut ? *StatsOut : Local);
  return Solver.solve();
}

TEST(Pkh03, BasicLoadStore) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), P = CS.addNode("p"),
         O = CS.addNode("o");
  CS.addAddressOf(B, O);
  CS.addAddressOf(P, B);
  CS.addLoad(A, P);
  PointsToSolution S = runPkh03<BitmapPtsPolicy>(CS);
  EXPECT_EQ(S.pointsToVector(A), (std::vector<NodeId>{O}));
}

TEST(Pkh03, CollapsesOnlineCycles) {
  // p = &a; *p = b; b = *p — the cycle forms only online.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), A = CS.addNode("a"), B = CS.addNode("b"),
         O = CS.addNode("o");
  CS.addAddressOf(P, A);
  CS.addStore(P, B);
  CS.addLoad(B, P);
  CS.addAddressOf(B, O);
  SolverStats Stats;
  PointsToSolution S = runPkh03<BitmapPtsPolicy>(CS, &Stats);
  EXPECT_EQ(S.pointsToVector(A), (std::vector<NodeId>{O}));
  EXPECT_EQ(S.pointsToVector(B), (std::vector<NodeId>{O}));
  EXPECT_GT(Stats.NodesCollapsed, 0u) << "the online cycle must collapse";
}

TEST(Pkh03, InitialCyclesHandled) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c"),
         O = CS.addNode("o");
  CS.addCopy(B, A);
  CS.addCopy(C, B);
  CS.addCopy(A, C);
  CS.addAddressOf(A, O);
  PointsToSolution S = runPkh03<BitmapPtsPolicy>(CS);
  for (NodeId V : {A, B, C})
    EXPECT_EQ(S.pointsToVector(V), (std::vector<NodeId>{O}));
}

class Pkh03Property : public testing::TestWithParam<uint64_t> {};

TEST_P(Pkh03Property, MatchesOracleBothRepresentations) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 29 + 7;
  Spec.NumLoads = 20;
  Spec.NumStores = 20;
  Spec.NumCycles = GetParam() % 5;
  ConstraintSystem CS = generateRandom(Spec);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  EXPECT_TRUE(runPkh03<BitmapPtsPolicy>(CS) == Oracle) << "bitmap";
  EXPECT_TRUE(runPkh03<BddPtsPolicy>(CS) == Oracle) << "bdd";
}

TEST_P(Pkh03Property, MatchesOracleOnProgramShapedWorkload) {
  BenchmarkSpec Spec;
  Spec.Seed = GetParam() * 31;
  Spec.NumFunctions = 8;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 12;
  ConstraintSystem CS = generateBenchmark(Spec);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  SolverStats Stats;
  EXPECT_TRUE(runPkh03<BitmapPtsPolicy>(CS, &Stats) == Oracle);
  // The hallmark of the 2003 algorithm: order maintenance triggers on
  // violating insertions.
  EXPECT_GT(Stats.CycleDetectAttempts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pkh03Property,
                         testing::Range<uint64_t>(1, 9));

} // namespace
