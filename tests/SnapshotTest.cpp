//===- SnapshotTest.cpp - Snapshot format round-trip and fuzzing ----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot format's two contracts: (1) write -> read -> write is
/// bit-identical for every solver kind and set representation (the writer
/// emits canonical form only, the reader accepts canonical form only);
/// (2) corrupt input — truncated at any byte, any single bit flipped,
/// wrong version/magic, random mutations — yields a structured ag::Status,
/// never a crash, and never touches the out-parameter.
///
//===----------------------------------------------------------------------===//

#include "serve/Snapshot.h"

#include "adt/Rng.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace ag;

namespace {

ConstraintSystem testSystem() {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 8;
  Spec.VarsPerFunction = 6;
  Spec.NumGlobals = 12;
  return generateBenchmark(Spec);
}

/// Builds a snapshot exactly the way `ptatool snapshot` does: OVS, then a
/// seeded solve of the reduced system.
Snapshot makeSnapshot(const ConstraintSystem &CS, SolverKind Kind,
                      PtsRepr Repr) {
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution =
      solve(Ovs.Reduced, Kind, Repr, nullptr, SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  Snap.Kind = Kind;
  Snap.Repr = Repr;
  return Snap;
}

void expectSnapshotsEqual(const Snapshot &A, const Snapshot &B) {
  EXPECT_EQ(A.CS.serialize(), B.CS.serialize());
  EXPECT_EQ(A.SeedReps, B.SeedReps);
  EXPECT_TRUE(A.Solution == B.Solution);
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Repr, B.Repr);
  EXPECT_EQ(A.Outcome, B.Outcome);
  EXPECT_EQ(A.Sound, B.Sound);
}

using KindRepr = std::tuple<SolverKind, PtsRepr>;

class SnapshotRoundTrip : public ::testing::TestWithParam<KindRepr> {};

TEST_P(SnapshotRoundTrip, WriteReadWriteIsBitIdentical) {
  auto [Kind, Repr] = GetParam();
  Snapshot Snap = makeSnapshot(testSystem(), Kind, Repr);

  std::string Bytes1;
  ASSERT_TRUE(writeSnapshotBytes(Snap, Bytes1).ok());
  Snapshot Loaded;
  ASSERT_TRUE(readSnapshotBytes(Bytes1, Loaded).ok());
  expectSnapshotsEqual(Snap, Loaded);

  // Also the representative structure, not just the routed sets: the rep
  // table is part of the format (serve keys caches on it).
  for (NodeId V = 0; V != Snap.Solution.numNodes(); ++V)
    EXPECT_EQ(Snap.Solution.repOf(V), Loaded.Solution.repOf(V));

  std::string Bytes2;
  ASSERT_TRUE(writeSnapshotBytes(Loaded, Bytes2).ok());
  EXPECT_EQ(Bytes1, Bytes2) << "write -> read -> write must be bit-identical";
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndReprs, SnapshotRoundTrip,
    ::testing::Combine(
        ::testing::Values(SolverKind::Naive, SolverKind::HT, SolverKind::PKH,
                          SolverKind::BLQ, SolverKind::LCD, SolverKind::HCD,
                          SolverKind::HTHCD, SolverKind::PKHHCD,
                          SolverKind::BLQHCD, SolverKind::LCDHCD),
        ::testing::Values(PtsRepr::Bitmap, PtsRepr::Bdd)),
    [](const ::testing::TestParamInfo<KindRepr> &Info) {
      std::string Name = solverKindName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '+')
          C = '_';
      Name += std::get<1>(Info.param) == PtsRepr::Bitmap ? "_Bitmap" : "_Bdd";
      return Name;
    });

class SnapshotFormat : public ::testing::Test {
protected:
  void SetUp() override {
    Snap = makeSnapshot(testSystem(), SolverKind::LCDHCD, PtsRepr::Bitmap);
    ASSERT_TRUE(writeSnapshotBytes(Snap, Bytes).ok());
  }
  Snapshot Snap;
  std::string Bytes;
};

TEST_F(SnapshotFormat, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "snapshot_roundtrip.snap";
  ASSERT_TRUE(writeSnapshotFile(Snap, Path).ok());
  Snapshot Loaded;
  ASSERT_TRUE(readSnapshotFile(Path, Loaded).ok());
  expectSnapshotsEqual(Snap, Loaded);
}

TEST_F(SnapshotFormat, MissingFileIsIoError) {
  Snapshot Out;
  Status St = readSnapshotFile("/nonexistent/missing.snap", Out);
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::IoError);
}

TEST_F(SnapshotFormat, UnwritablePathIsIoError) {
  Status St = writeSnapshotFile(Snap, "/nonexistent/dir/out.snap");
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::IoError);
}

TEST_F(SnapshotFormat, EveryTruncationIsAStructuredError) {
  // Pre-load the out-parameter with a valid snapshot to prove failed
  // reads leave it untouched.
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Snapshot Out;
    ASSERT_TRUE(readSnapshotBytes(Bytes, Out).ok());
    Status St = readSnapshotBytes(Bytes.substr(0, Len), Out);
    ASSERT_FALSE(St.ok()) << "prefix of length " << Len << " accepted";
    EXPECT_EQ(St.code(), StatusCode::ParseError);
    EXPECT_FALSE(St.message().empty());
    EXPECT_EQ(Out.CS.serialize(), Snap.CS.serialize())
        << "failed read modified the out-parameter at length " << Len;
  }
}

TEST_F(SnapshotFormat, EverySingleBitFlipIsDetected) {
  // The header is field-validated and the payload is checksummed, so no
  // single-bit corruption anywhere in the file may slip through.
  for (size_t Pos = 0; Pos != Bytes.size(); ++Pos) {
    std::string Corrupt = Bytes;
    Corrupt[Pos] = static_cast<char>(Corrupt[Pos] ^ (1 << (Pos % 8)));
    Snapshot Out;
    Status St = readSnapshotBytes(Corrupt, Out);
    EXPECT_FALSE(St.ok()) << "bit flip at byte " << Pos << " accepted";
  }
}

TEST_F(SnapshotFormat, WrongVersionRejected) {
  std::string Corrupt = Bytes;
  Corrupt[8] = static_cast<char>(SnapshotVersion + 1); // version u32 @ 8.
  Snapshot Out;
  Status St = readSnapshotBytes(Corrupt, Out);
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::ParseError);
  EXPECT_NE(St.message().find("version"), std::string::npos);
}

TEST_F(SnapshotFormat, WrongMagicRejected) {
  std::string Corrupt = Bytes;
  Corrupt[0] = 'X';
  Snapshot Out;
  Status St = readSnapshotBytes(Corrupt, Out);
  ASSERT_FALSE(St.ok());
  EXPECT_NE(St.message().find("magic"), std::string::npos);
}

TEST_F(SnapshotFormat, EmptyAndGarbageRejected) {
  Snapshot Out;
  EXPECT_FALSE(readSnapshotBytes("", Out).ok());
  EXPECT_FALSE(readSnapshotBytes("hello, definitely not a snapshot", Out).ok());
  EXPECT_FALSE(readSnapshotBytes(std::string(1000, '\xff'), Out).ok());
}

TEST_F(SnapshotFormat, TrailingBytesRejected) {
  Snapshot Out;
  EXPECT_FALSE(readSnapshotBytes(Bytes + "x", Out).ok());
}

TEST_F(SnapshotFormat, WriterRejectsInconsistentSnapshots) {
  Snapshot Bad = makeSnapshot(testSystem(), SolverKind::LCD, PtsRepr::Bitmap);
  Bad.SeedReps.pop_back(); // Mis-sized seed table.
  std::string Out;
  Status St = writeSnapshotBytes(Bad, Out);
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), StatusCode::InvalidArgument);
}

/// Random structural mutations (the FuzzTest harness idiom): the reader
/// must reject or round-trip, never crash or accept non-canonical bytes.
class SnapshotFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotFuzz, MutatedSnapshotsNeverCrash) {
  Snapshot Snap = makeSnapshot(testSystem(), SolverKind::PKH, PtsRepr::Bitmap);
  std::string Base;
  ASSERT_TRUE(writeSnapshotBytes(Snap, Base).ok());

  Rng R(GetParam() * 61 + 7);
  for (int Trial = 0; Trial != 60; ++Trial) {
    std::string Text = Base;
    int Edits = 1 + Trial % 6;
    for (int E = 0; E != Edits && !Text.empty(); ++E) {
      size_t Pos = R.nextBelow(Text.size());
      switch (R.nextBelow(4)) {
      case 0: // Overwrite a byte.
        Text[Pos] = static_cast<char>(R.nextBelow(256));
        break;
      case 1: // Delete a span.
        Text.erase(Pos, 1 + R.nextBelow(16));
        break;
      case 2: // Duplicate a span.
        Text.insert(Pos, Text.substr(Pos, 1 + R.nextBelow(16)));
        break;
      case 3: // Insert raw bytes.
        Text.insert(Pos, std::string(1 + R.nextBelow(8),
                                     static_cast<char>(R.nextBelow(256))));
        break;
      }
    }
    Snapshot Out;
    Status St = readSnapshotBytes(Text, Out);
    if (St.ok()) {
      // Astronomically unlikely (checksummed), but if a mutation survives
      // validation it must be canonical — i.e. re-write the same bytes.
      std::string Back;
      ASSERT_TRUE(writeSnapshotBytes(Out, Back).ok());
      EXPECT_EQ(Back, Text);
    } else {
      EXPECT_FALSE(St.message().empty()) << "failures must carry a message";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz, ::testing::Range<uint64_t>(1, 9));

} // namespace
