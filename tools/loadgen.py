#!/usr/bin/env python3
"""Load generator for the networked `ptatool serve` front-end.

Drives M concurrent clients against a running server (TCP or unix
socket), each pipelining a seeded mix of pts / alias / pointedby
queries and reading replies until the server closes the connection
after the trailing `quit`. Every reply stream is asserted: one reply
line per query on top of the banner, every line non-empty, no `ERR`
replies unless --allow-errors. Prints aggregate QPS and an error
summary; exits non-zero when any assertion fails.

Usage against a running server:
    loadgen.py --port 7777 --clients 8 --queries 2000 --nodes 500
    loadgen.py --unix-socket /tmp/pta.sock --clients 4

Or let it launch the server itself (it parses the `serving on ...`
stderr line for the bound endpoint, then SIGTERMs the server and
checks the drain message on the way out):
    loadgen.py --launch "./ptatool serve snap.bin --port 0" --clients 8

The query mix draws node ids below --nodes from a --seed'ed PRNG, so
two runs with the same flags produce byte-identical request streams
(useful for A/B runs across server builds).
"""

import argparse
import random
import re
import shlex
import signal
import socket
import subprocess
import sys
import threading
import time


def build_script(seed, queries, nodes, pool_size):
    rng = random.Random(seed)
    pool = [rng.randrange(nodes) for _ in range(max(1, pool_size))]
    lines = []
    for _ in range(queries):
        a = rng.choice(pool)
        kind = rng.randrange(4)
        if kind <= 1:
            lines.append("pts %d" % a)
        elif kind == 2:
            lines.append("alias %d %d" % (a, rng.choice(pool)))
        else:
            lines.append("pointedby %d" % a)
    lines.append("quit")
    return ("\n".join(lines) + "\n").encode()


class ClientResult(object):
    def __init__(self):
        self.ok = False
        self.reply_lines = 0
        self.err_replies = 0
        self.detail = ""


def run_client(endpoint, script, queries, timeout, result):
    try:
        if isinstance(endpoint, tuple):
            sock = socket.create_connection(endpoint, timeout=timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(endpoint)
    except OSError as e:
        result.detail = "connect failed: %s" % e
        return
    try:
        sock.sendall(script)
        chunks = []
        while True:
            try:
                chunk = sock.recv(1 << 16)
            except socket.timeout:
                result.detail = "read timed out"
                return
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        sock.close()
    data = b"".join(chunks)
    if data and not data.endswith(b"\n"):
        result.detail = "reply stream does not end with a newline"
        return
    lines = data.decode("utf-8", "replace").splitlines()
    result.reply_lines = len(lines)
    if any(not l for l in lines):
        result.detail = "empty reply line"
        return
    result.err_replies = sum(
        1 for l in lines if l.startswith("ERR") or l.startswith("error:"))
    # One reply line per query rides on top of the banner (and quit's
    # goodbye, if any) -- fewer means the server dropped replies.
    if len(lines) < queries:
        result.detail = "%d reply lines for %d queries" % (len(lines), queries)
        return
    result.ok = True


def launch_server(cmd, timeout):
    # No shell wrapper: SIGTERM must reach ptatool itself, not an
    # intermediate sh that dies with the default disposition.
    proc = subprocess.Popen(shlex.split(cmd), stderr=subprocess.PIPE)
    deadline = time.monotonic() + timeout
    endpoint = None
    for raw in proc.stderr:
        line = raw.decode("utf-8", "replace")
        sys.stderr.write("[server] " + line)
        m = re.search(r"serving on (\S+)", line)
        if m:
            ep = m.group(1)
            tcp = re.match(r"(\d+\.\d+\.\d+\.\d+):(\d+)$", ep)
            if tcp:
                endpoint = (tcp.group(1), int(tcp.group(2)))
            else:
                endpoint = ep[5:] if ep.startswith("unix:") else ep
            break
        if time.monotonic() > deadline:
            break
    if endpoint is None:
        proc.terminate()
        raise SystemExit("error: server never printed 'serving on ...'")
    return proc, endpoint


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--port", type=int, help="TCP port of a running server")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--unix-socket", help="unix socket of a running server")
    ap.add_argument("--launch",
                    help="shell command that starts `ptatool serve ...`; "
                    "the bound endpoint is parsed from its stderr")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--queries", type=int, default=2000,
                    help="queries per client")
    ap.add_argument("--nodes", type=int, default=1000,
                    help="query node ids are drawn below this bound")
    ap.add_argument("--pool", type=int, default=128,
                    help="distinct ids per client (cache-heavy mix)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--timeout", type=float, default=60.0,
                    help="per-socket-operation timeout in seconds")
    ap.add_argument("--allow-errors", action="store_true",
                    help="do not fail on ERR replies (e.g. shedding tests)")
    args = ap.parse_args()

    modes = sum(x is not None for x in (args.port, args.unix_socket, args.launch))
    if modes != 1:
        ap.error("exactly one of --port, --unix-socket, --launch is required")

    proc = None
    if args.launch:
        proc, endpoint = launch_server(args.launch, args.timeout)
    elif args.port is not None:
        endpoint = (args.host, args.port)
    else:
        endpoint = args.unix_socket

    scripts = [
        build_script(args.seed * 1000 + c, args.queries, args.nodes, args.pool)
        for c in range(args.clients)
    ]
    results = [ClientResult() for _ in range(args.clients)]
    threads = [
        threading.Thread(target=run_client,
                         args=(endpoint, scripts[c], args.queries,
                               args.timeout, results[c]))
        for c in range(args.clients)
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.monotonic() - t0

    failed = 0
    err_replies = 0
    for c, r in enumerate(results):
        err_replies += r.err_replies
        if not r.ok:
            failed += 1
            print("client %d FAILED: %s" % (c, r.detail or "unknown"),
                  file=sys.stderr)
    total = args.clients * args.queries
    qps = total / wall if wall > 0 else 0.0
    print("loadgen: %d clients x %d queries in %.3f s -> %.0f qps "
          "(%d failed clients, %d ERR replies)" %
          (args.clients, args.queries, wall, qps, failed, err_replies))

    rc = 0
    if failed:
        rc = 1
    if err_replies and not args.allow_errors:
        print("loadgen: unexpected ERR replies (use --allow-errors to permit)",
              file=sys.stderr)
        rc = 1

    if proc is not None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("loadgen: server did not drain after SIGTERM", file=sys.stderr)
            rc = 1
        else:
            if proc.returncode != 0:
                print("loadgen: server exited %d after SIGTERM" % proc.returncode,
                      file=sys.stderr)
                rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
