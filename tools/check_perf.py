#!/usr/bin/env python3
"""Perf guardrail over BENCH_solvers.json.

Compares the LCD-family bitmap wall times (the paper's headline solvers,
and the ones the memory-kernel work optimizes) of a fresh bench run
against the checked-in baseline, and fails when any suite regresses
beyond the tolerance.

Usage:
    check_perf.py <bench.json> <baseline.json>            # gate
    check_perf.py <bench.json> <baseline.json> --write-baseline

The gate compares each (suite, kind) row present in the baseline; rows
missing from the fresh run fail (a renamed suite must refresh the
baseline). Tolerance is 25% by default and can be loosened for noisy
runners via the AG_PERF_TOLERANCE environment variable (e.g. 0.5 allows
+50%). CI also honors a `[skip-perf-guard]` commit-message tag to skip
the step entirely -- see .github/workflows/ci.yml.

--write-baseline regenerates <baseline.json> from <bench.json> (run the
bench at the SAME fixed scale the CI step uses). Refresh it whenever a
deliberate perf trade-off or a runner change shifts the numbers.
"""

import json
import os
import sys

GUARDED_KINDS = ("LCD", "LCD+HCD")
DEFAULT_TOLERANCE = 0.25


def rows(bench):
    out = {}
    for r in bench.get("solvers", []):
        if r["kind"] in GUARDED_KINDS:
            out[(r["suite"], r["kind"])] = float(r["wall_ms"])
    return out


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    bench_path, baseline_path = argv[1], argv[2]
    with open(bench_path) as f:
        bench = rows(json.load(f))
    if not bench:
        print("error: %s has no LCD-family solver rows" % bench_path)
        return 1

    if "--write-baseline" in argv[3:]:
        doc = {
            "comment": "Perf-guardrail baseline (tools/check_perf.py). "
                       "min-of-3 wall_ms per LCD-family bitmap run; "
                       "regenerate with --write-baseline at the scale "
                       "the CI step runs.",
            "rows": [
                {"suite": s, "kind": k, "wall_ms": ms}
                for (s, k), ms in sorted(bench.items())
            ],
        }
        with open(baseline_path, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print("wrote %s (%d rows)" % (baseline_path, len(bench)))
        return 0

    with open(baseline_path) as f:
        baseline = {
            (r["suite"], r["kind"]): float(r["wall_ms"])
            for r in json.load(f)["rows"]
        }
    tolerance = float(os.environ.get("AG_PERF_TOLERANCE", DEFAULT_TOLERANCE))

    failed = []
    for (suite, kind), base_ms in sorted(baseline.items()):
        cur_ms = bench.get((suite, kind))
        if cur_ms is None:
            print("%-14s %-8s MISSING from bench output" % (suite, kind))
            failed.append((suite, kind))
            continue
        delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        verdict = "ok"
        if delta > tolerance:
            verdict = "REGRESSED"
            failed.append((suite, kind))
        print("%-14s %-8s base %8.2f ms  now %8.2f ms  %+6.1f%%  %s"
              % (suite, kind, base_ms, cur_ms, 100 * delta, verdict))

    if failed:
        print("\nperf guardrail FAILED (> %.0f%% over baseline): %s"
              % (100 * tolerance,
                 ", ".join("%s/%s" % f for f in failed)))
        print("If the slowdown is intended, refresh the baseline with "
              "--write-baseline, or loosen AG_PERF_TOLERANCE / use the "
              "[skip-perf-guard] commit tag for a one-off.")
        return 1
    print("\nperf guardrail ok (tolerance %.0f%%)" % (100 * tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
