#!/usr/bin/env python3
"""Perf guardrail over BENCH_solvers.json / BENCH_queries.json.

Compares a fresh bench run against the checked-in baseline and fails
when any guarded row regresses beyond the tolerance. Guarded rows:

* BENCH_solvers.json -- the LCD-family bitmap wall times (the paper's
  headline solvers, and the ones the memory-kernel work optimizes).
* BENCH_queries.json -- the demand tier's first-answer latencies per
  suite: best targeted query (first_query_ms), the sample median, and
  the whole-graph worst case (max_query_ms), plus the request-telemetry
  overhead ratio: serving with wide events + latency quantiles enabled
  must stay within AG_TELEMETRY_OVERHEAD_BOUND (default 1.75x) of the
  observability-off run of the same REPL mix. The ratio is gated
  directly (not against the baseline file): it is a self-relative
  number, so runner speed cancels out.

Usage:
    check_perf.py <bench.json> [<bench2.json> ...] <baseline.json>
    check_perf.py <bench.json> [...] <baseline.json> --write-baseline

Rows from every bench file given are merged; the gate compares each
(suite, kind) row present in the baseline, and rows missing from the
fresh run fail (a renamed suite must refresh the baseline). Tolerance
is 25% by default and can be loosened for noisy runners via the
AG_PERF_TOLERANCE environment variable (e.g. 0.5 allows +50%). Rows
whose baseline sits below the timing floor (0.1 ms -- trivial demand
queries resolve in a few hundred nanoseconds, and the smallest suite's
whole solve fits in tens of microseconds) are compared against the
floor instead, so timer jitter on sub-resolution rows cannot flake the
gate while a real collapse into heavyweight work still fails. CI also
honors a `[skip-perf-guard]` commit-message tag to skip the step
entirely -- see .github/workflows/ci.yml.

--write-baseline regenerates <baseline.json> from the given bench runs
(run them at the SAME fixed scale the CI step uses). Refresh it
whenever a deliberate perf trade-off or a runner change shifts the
numbers.
"""

import json
import os
import sys

GUARDED_KINDS = ("LCD", "LCD+HCD")
DEMAND_ROWS = (
    ("demand-first-query", "first_query_ms"),
    ("demand-median-query", "median_query_ms"),
    ("demand-max-query", "max_query_ms"),
)
DEFAULT_TOLERANCE = 0.25
# Rows whose baseline sits below this are gated against the floor, not
# the baseline: a 0.06 ms row routinely measures 0.08-0.12 ms on a busy
# runner (scheduler quantum effects dominate), which would flake a
# straight 25% comparison while telling us nothing.
FLOOR_MS = 0.1
# Serving with full request telemetry may cost at most this multiple of
# the obs-off run (bench_queries' telemetry_overhead section; the
# measured steady-state ratio is ~1.25x, the bound leaves noise room).
DEFAULT_TELEMETRY_BOUND = 1.75


def rows(bench):
    out = {}
    for r in bench.get("solvers", []):
        if r["kind"] in GUARDED_KINDS:
            out[(r["suite"], r["kind"])] = float(r["wall_ms"])
    for r in bench.get("suites", []):
        demand = r.get("demand")
        if not demand:
            continue
        for kind, key in DEMAND_ROWS:
            if key in demand:
                out[(r["suite"], kind)] = float(demand[key])
    return out


def check_telemetry_overhead(docs):
    """Gates bench_queries' telemetry_overhead ratio. Returns True if ok."""
    bound = float(os.environ.get("AG_TELEMETRY_OVERHEAD_BOUND",
                                 DEFAULT_TELEMETRY_BOUND))
    ok = True
    for doc in docs:
        overhead = doc.get("telemetry_overhead")
        if not overhead:
            continue
        ratio = float(overhead["enabled_over_disabled"])
        verdict = "ok" if ratio <= bound else "REGRESSED"
        if ratio > bound:
            ok = False
        print("%-14s %-20s off %8.2f ms  on %8.2f ms  ratio %.3f "
              "(bound %.2f)  %s"
              % (overhead.get("suite", "?"), "telemetry-overhead",
                 float(overhead["disabled_best_ms"]),
                 float(overhead["enabled_best_ms"]), ratio, bound, verdict))
    return ok


def main(argv):
    flags = [a for a in argv[1:] if a.startswith("--")]
    paths = [a for a in argv[1:] if not a.startswith("--")]
    if len(paths) < 2:
        sys.stderr.write(__doc__)
        return 2
    bench_paths, baseline_path = paths[:-1], paths[-1]
    bench = {}
    docs = []
    for p in bench_paths:
        with open(p) as f:
            doc = json.load(f)
        docs.append(doc)
        bench.update(rows(doc))
    if not bench:
        print("error: %s has no guarded rows" % ", ".join(bench_paths))
        return 1

    if "--write-baseline" in flags:
        doc = {
            "comment": "Perf-guardrail baseline (tools/check_perf.py). "
                       "min-of-3 wall_ms per LCD-family bitmap run plus "
                       "the demand tier's first/median/max fresh "
                       "first-answer latencies; regenerate with "
                       "--write-baseline at the scale the CI step runs.",
            "rows": [
                {"suite": s, "kind": k, "wall_ms": ms}
                for (s, k), ms in sorted(bench.items())
            ],
        }
        with open(baseline_path, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print("wrote %s (%d rows)" % (baseline_path, len(bench)))
        return 0

    with open(baseline_path) as f:
        baseline = {
            (r["suite"], r["kind"]): float(r["wall_ms"])
            for r in json.load(f)["rows"]
        }
    tolerance = float(os.environ.get("AG_PERF_TOLERANCE", DEFAULT_TOLERANCE))

    failed = []
    for (suite, kind), base_ms in sorted(baseline.items()):
        cur_ms = bench.get((suite, kind))
        if cur_ms is None:
            print("%-14s %-20s MISSING from bench output" % (suite, kind))
            failed.append((suite, kind))
            continue
        ref_ms = max(base_ms, FLOOR_MS)
        delta = (cur_ms - ref_ms) / ref_ms if ref_ms > 0 else 0.0
        verdict = "ok" if base_ms >= FLOOR_MS else "ok (floored)"
        if delta > tolerance:
            verdict = "REGRESSED"
            failed.append((suite, kind))
        print("%-14s %-20s base %8.3f ms  now %8.3f ms  %+6.1f%%  %s"
              % (suite, kind, base_ms, cur_ms, 100 * delta, verdict))

    if not check_telemetry_overhead(docs):
        print("\nperf guardrail FAILED: request telemetry costs more than "
              "AG_TELEMETRY_OVERHEAD_BOUND allows; make the hot path "
              "cheaper or raise the bound for a deliberate trade-off.")
        return 1

    if failed:
        print("\nperf guardrail FAILED (> %.0f%% over baseline): %s"
              % (100 * tolerance,
                 ", ".join("%s/%s" % f for f in failed)))
        print("If the slowdown is intended, refresh the baseline with "
              "--write-baseline, or loosen AG_PERF_TOLERANCE / use the "
              "[skip-perf-guard] commit tag for a one-off.")
        return 1
    print("\nperf guardrail ok (tolerance %.0f%%)" % (100 * tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
