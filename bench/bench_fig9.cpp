//===- bench_fig9.cpp - BDD vs bitmap time (Figure 9) ---------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 9: per-algorithm time of the BDD points-to
/// implementation normalized by its bitmap counterpart, averaged over the
/// suites (bars > 1 mean BDDs are slower).
///
/// Expected shape (paper): about 2x slower on average, dominated by
/// allsat-style iteration; PKH and HCD can be *faster* with BDDs on the
/// larger suites because their heavy propagation becomes cheap unions.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cmath>
#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader(
      "Figure 9: BDD points-to time normalized to bitmap (per algorithm)",
      "Figure 9", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf(" %9s\n", "geomean");

  double AllLogSum = 0;
  unsigned AllCount = 0;
  for (SolverKind Kind : AllSolverKinds) {
    if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD)
      continue;
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    double LogSum = 0;
    for (const Suite &S : Suites) {
      double TBitmap = runSolver(S, Kind, PtsRepr::Bitmap).Seconds;
      double TBdd = runSolver(S, Kind, PtsRepr::Bdd).Seconds;
      double Ratio = TBdd / TBitmap;
      LogSum += std::log(Ratio);
      std::printf(" %11.2f", Ratio);
      std::fflush(stdout);
    }
    std::printf(" %9.2f\n", std::exp(LogSum / Suites.size()));
    AllLogSum += LogSum;
    AllCount += Suites.size();
  }
  std::printf("\noverall BDD/bitmap time ratio (geomean): %.2fx\n",
              std::exp(AllLogSum / AllCount));
  return 0;
}
