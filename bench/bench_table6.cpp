//===- bench_table6.cpp - Memory, BDD points-to (Table 6) -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 6: peak tracked memory with per-variable BDD
/// points-to sets. The shared node table gives massive sharing between
/// similar sets.
///
/// Expected shape (paper): dramatically less memory than bitmaps (5.5x on
/// average), with a floor set by the initial table allocation so the
/// smallest suite can even cost *more* than its bitmap run.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Table 6: memory (MB), BDD points-to sets", "Table 6",
              Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf("\n");

  for (SolverKind Kind : AllSolverKinds) {
    if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD)
      continue;
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    for (const Suite &S : Suites) {
      RunResult R = runSolver(S, Kind, PtsRepr::Bdd);
      std::printf(" %11.2f", R.peakMb());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
