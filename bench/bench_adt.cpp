//===- bench_adt.cpp - Microbenchmarks for the support ADTs ---------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the sparse bit vector (the hot
/// data structure of every bitmap solver) and the union-find.
///
//===----------------------------------------------------------------------===//

#include "adt/Rng.h"
#include "adt/SparseBitVector.h"
#include "adt/UnionFind.h"

#include <benchmark/benchmark.h>

#include <set>
#include <vector>

using namespace ag;

namespace {

SparseBitVector randomVector(uint64_t Seed, unsigned Count,
                             uint32_t Universe) {
  Rng R(Seed);
  SparseBitVector V;
  for (unsigned I = 0; I != Count; ++I)
    V.set(static_cast<uint32_t>(R.nextBelow(Universe)));
  return V;
}

void BM_SbvSet(benchmark::State &State) {
  uint32_t Universe = static_cast<uint32_t>(State.range(0));
  Rng R(1);
  for (auto _ : State) {
    SparseBitVector V;
    for (int I = 0; I != 1000; ++I)
      V.set(static_cast<uint32_t>(R.nextBelow(Universe)));
    benchmark::DoNotOptimize(V.count());
  }
}
BENCHMARK(BM_SbvSet)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SbvUnion(benchmark::State &State) {
  uint32_t Universe = static_cast<uint32_t>(State.range(0));
  SparseBitVector A = randomVector(1, 2000, Universe);
  SparseBitVector B = randomVector(2, 2000, Universe);
  for (auto _ : State) {
    SparseBitVector C = A;
    benchmark::DoNotOptimize(C.unionWith(B));
  }
}
BENCHMARK(BM_SbvUnion)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SbvEquality(benchmark::State &State) {
  // The LCD trigger compares sets constantly; equality must be cheap.
  SparseBitVector A = randomVector(3, 4000, 1 << 16);
  SparseBitVector B = A;
  for (auto _ : State)
    benchmark::DoNotOptimize(A == B);
}
BENCHMARK(BM_SbvEquality);

void BM_SbvIterate(benchmark::State &State) {
  SparseBitVector A = randomVector(4, 4000, 1 << 16);
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint32_t X : A)
      Sum += X;
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_SbvIterate);

void BM_SbvVsStdSetUnion(benchmark::State &State) {
  // Context for why the solvers use sparse bitmaps.
  std::set<uint32_t> A, B;
  Rng R(5);
  for (int I = 0; I != 2000; ++I) {
    A.insert(static_cast<uint32_t>(R.nextBelow(1 << 16)));
    B.insert(static_cast<uint32_t>(R.nextBelow(1 << 16)));
  }
  for (auto _ : State) {
    std::set<uint32_t> C = A;
    C.insert(B.begin(), B.end());
    benchmark::DoNotOptimize(C.size());
  }
}
BENCHMARK(BM_SbvVsStdSetUnion);

void BM_UnionFind(benchmark::State &State) {
  uint32_t N = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    UnionFind UF(N);
    Rng R(7);
    for (uint32_t I = 0; I != N; ++I)
      UF.unite(static_cast<uint32_t>(R.nextBelow(N)),
               static_cast<uint32_t>(R.nextBelow(N)));
    uint64_t Sum = 0;
    for (uint32_t I = 0; I != N; ++I)
      Sum += UF.find(I);
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_UnionFind)->Arg(1 << 12)->Arg(1 << 16);

} // namespace

BENCHMARK_MAIN();
