//===- bench_table4.cpp - Memory, bitmap points-to (Table 4) --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 4: peak tracked memory (MB) per algorithm per suite
/// with bitmap points-to sets. Tracked memory covers the dominant
/// structures: sparse-bitmap elements (points-to sets + edge sets) and BDD
/// node tables (BLQ only).
///
/// Expected shape (paper): bitmap algorithms' memory scales with the
/// benchmark (wine largest); BLQ's is nearly constant, set by its initial
/// BDD pool; HCD standalone uses more than the others (it collapses fewer
/// nodes).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Table 4: memory (MB), bitmap points-to sets", "Table 4",
              Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf("\n");

  for (SolverKind Kind : AllSolverKinds) {
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    for (const Suite &S : Suites) {
      RunResult R = runSolver(S, Kind, PtsRepr::Bitmap);
      std::printf(" %11.2f", R.peakMb());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
