//===- bench_solvers.cpp - Solver comparison + parallel speedup -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable solver comparison: for every algorithm (bitmap sets),
/// cold wall-clock time plus the min of three repetitions, an embedded
/// "ag.metrics.v5" snapshot and peak tracked bytes per suite; then the
/// parallel wavefront solver at 1/2/4/8 threads against sequential
/// LCD+HCD, verifying bit-identical solutions and recording the speedup.
/// A "memory" section records the memory-kernel story per suite (arena
/// slab high-water mark, set-interning hit rate, physical vs routed
/// solution bytes) from the LCD+HCD run. Results land in
/// BENCH_solvers.json (argv[2] or the working directory).
///
/// The JSON records the host's hardware concurrency alongside the speedups:
/// parallel numbers are only meaningful relative to the cores the run
/// actually had (on a single-core host the speedup ceiling is 1.0 and the
/// sharding/locking overhead is all that shows).
///
/// An "obs_overhead" section times the LCD/bitmap solve with all
/// observability channels off vs trace+metrics on: the disabled time is
/// the cross-PR guardrail number (instrumentation must stay one branch
/// per site when off), the ratio bounds the cost of turning it on.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"
#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace ag;
using namespace ag::bench;

namespace {

struct SolverRow {
  std::string Suite;
  std::string Kind;
  double ColdMs = 0; ///< First repetition (cold allocator/caches).
  double WallMs = 0; ///< Min of SolverReps repetitions.
  uint64_t WorklistPops = 0;
  uint64_t PeakBytes = 0;
  uint64_t Hash = 0;
  std::string MetricsJson; ///< Compact ag.metrics.v5 object for this run.
};

/// Memory-kernel numbers for one suite (from the cold LCD+HCD run).
struct MemoryRow {
  std::string Suite;
  uint64_t ArenaPeakBytes = 0;
  uint64_t ArenaPeakSlabs = 0;
  uint64_t InternedHits = 0;
  uint64_t InternedMisses = 0;
  uint64_t PeakBitmapBytes = 0;
  uint64_t PhysicalSetBytes = 0;
  uint64_t RoutedSetBytes = 0;
};

struct ParallelRow {
  std::string Suite;
  unsigned Threads = 0;
  double WallMs = 0;
  double Speedup = 0; ///< Sequential LCD+HCD wall time / this wall time.
  double Scaling = 0; ///< 1-thread parallel wall time / this wall time.
  uint64_t ParallelRounds = 0;
  uint64_t Propagations = 0;
  bool Identical = false; ///< Solution hash equals the sequential run's.
  std::string MetricsJson; ///< Compact ag.metrics.v5 object for this run.
};

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S)
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else {
      Out += C;
    }
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  std::string OutPath =
      Argc > 2 ? Argv[2] : std::string("BENCH_solvers.json");
  printHeader("Solver comparison + parallel wavefront speedup",
              "Tables 3-5, parallel extension", Scale);
  unsigned HostCores = std::thread::hardware_concurrency();

  std::vector<Suite> Suites = loadSuites(Scale);
  std::vector<SolverRow> Rows;
  std::vector<MemoryRow> MemRows;
  std::vector<ParallelRow> ParRows;
  bool AllIdentical = true;
  // Per-kind repetitions: the first is recorded as the cold time, the
  // minimum of all reps as the steady-state wall time (min, not mean —
  // noise is one-sided).
  constexpr int SolverReps = 3;

  for (const Suite &S : Suites) {
    std::printf("%s:\n", S.Name.c_str());
    for (SolverKind Kind : AllSolverKinds) {
      RunResult R = runSolver(S, Kind, PtsRepr::Bitmap, SolverOptions(),
                              /*CaptureMetrics=*/true);
      SolverRow Row;
      Row.Suite = S.Name;
      Row.Kind = solverKindName(Kind);
      Row.ColdMs = R.Seconds * 1e3;
      Row.WallMs = Row.ColdMs;
      for (int Rep = 1; Rep != SolverReps; ++Rep) {
        RunResult Warm = runSolver(S, Kind, PtsRepr::Bitmap);
        Row.WallMs = std::min(Row.WallMs, Warm.Seconds * 1e3);
      }
      Row.WorklistPops = R.Stats.WorklistPops;
      Row.PeakBytes = R.PeakBitmapBytes + R.PeakBddBytes;
      Row.Hash = R.SolutionHash;
      Row.MetricsJson = std::move(R.MetricsJson);
      if (Kind == SolverKind::LCDHCD) {
        MemoryRow M;
        M.Suite = S.Name;
        M.ArenaPeakBytes = R.ArenaPeakBytes;
        M.ArenaPeakSlabs = R.ArenaPeakSlabs;
        M.InternedHits = R.InternedHits;
        M.InternedMisses = R.InternedMisses;
        M.PeakBitmapBytes = R.PeakBitmapBytes;
        M.PhysicalSetBytes = R.PhysicalSetBytes;
        M.RoutedSetBytes = R.RoutedSetBytes;
        MemRows.push_back(std::move(M));
      }
      std::printf("  %-8s %10.2f ms (cold %8.2f)  %10llu pops  %8.2f MB\n",
                  Row.Kind.c_str(), Row.WallMs, Row.ColdMs,
                  static_cast<unsigned long long>(Row.WorklistPops),
                  R.peakMb());
      Rows.push_back(std::move(Row));
    }

    // Parallel wavefront at each thread count vs the sequential LCD+HCD
    // run just recorded.
    double SeqMs = 0;
    uint64_t SeqHash = 0;
    for (const SolverRow &Row : Rows)
      if (Row.Suite == S.Name && Row.Kind == "LCD+HCD") {
        SeqMs = Row.WallMs;
        SeqHash = Row.Hash;
      }
    double OneThreadMs = 0;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      SolverOptions Opts;
      Opts.Threads = Threads;
      RunResult R = runSolver(S, SolverKind::LCDHCD, PtsRepr::Bitmap, Opts,
                              /*CaptureMetrics=*/true);
      ParallelRow P;
      P.Suite = S.Name;
      P.Threads = Threads;
      P.WallMs = R.Seconds * 1e3;
      if (Threads == 1)
        OneThreadMs = P.WallMs;
      P.Speedup = P.WallMs > 0 ? SeqMs / P.WallMs : 0;
      P.Scaling = P.WallMs > 0 ? OneThreadMs / P.WallMs : 0;
      P.ParallelRounds = R.Stats.ParallelRounds;
      P.Propagations = R.Stats.Propagations;
      P.Identical = R.SolutionHash == SeqHash;
      P.MetricsJson = std::move(R.MetricsJson);
      AllIdentical &= P.Identical;
      std::printf("  par x%-2u  %10.2f ms  speedup %5.2f  scaling %5.2f  "
                  "rounds %llu  props %llu  %s\n",
                  Threads, P.WallMs, P.Speedup, P.Scaling,
                  static_cast<unsigned long long>(P.ParallelRounds),
                  static_cast<unsigned long long>(P.Propagations),
                  P.Identical ? "identical" : "DIVERGED");
      ParRows.push_back(std::move(P));
    }
  }

  // --- Observability overhead guardrail: LCD/bitmap on the first suite,
  // best of OverheadReps with every channel off vs trace+metrics on. The
  // disabled number is what cross-PR comparisons gate on (<2% regression
  // vs an uninstrumented build); the ratio bounds the enabled cost.
  const Suite *Guard = &Suites.front();
  for (const Suite &S : Suites)
    if (S.RawConstraints > Guard->RawConstraints)
      Guard = &S;
  const Suite &GuardSuite = *Guard;
  constexpr int OverheadReps = 3;
  uint32_t SavedChannels =
      obs::ChannelBits.load(std::memory_order_relaxed);
  obs::ChannelBits.store(0, std::memory_order_relaxed);
  double DisabledBestMs = 0;
  for (int Rep = 0; Rep != OverheadReps; ++Rep) {
    RunResult R = runSolver(GuardSuite, SolverKind::LCD, PtsRepr::Bitmap);
    double Ms = R.Seconds * 1e3;
    if (Rep == 0 || Ms < DisabledBestMs)
      DisabledBestMs = Ms;
  }
  obs::setTraceEnabled(true);
  obs::setMetricsEnabled(true);
  double EnabledBestMs = 0;
  for (int Rep = 0; Rep != OverheadReps; ++Rep) {
    obs::TraceRecorder::instance().clear();
    obs::MetricsRegistry::instance().reset();
    RunResult R = runSolver(GuardSuite, SolverKind::LCD, PtsRepr::Bitmap);
    double Ms = R.Seconds * 1e3;
    if (Rep == 0 || Ms < EnabledBestMs)
      EnabledBestMs = Ms;
  }
  obs::TraceRecorder::instance().clear();
  obs::MetricsRegistry::instance().reset();
  obs::ChannelBits.store(SavedChannels, std::memory_order_relaxed);
  double OverheadRatio =
      DisabledBestMs > 0 ? EnabledBestMs / DisabledBestMs : 0;
  std::printf("\nobs overhead (LCD bitmap, %s, best of %d): off %.2f ms, "
              "trace+metrics %.2f ms, ratio %.3f\n",
              GuardSuite.Name.c_str(), OverheadReps, DisabledBestMs,
              EnabledBestMs, OverheadRatio);

  std::string Json = "{\n";
  Json += "  \"scale\": " + std::to_string(Scale) + ",\n";
  Json += "  \"host_cores\": " + std::to_string(HostCores) + ",\n";
  Json += "  \"solvers\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const SolverRow &R = Rows[I];
    Json += "    {\"suite\": \"";
    appendJsonEscaped(Json, R.Suite);
    Json += "\", \"kind\": \"";
    appendJsonEscaped(Json, R.Kind);
    Json += "\", \"wall_ms\": " + std::to_string(R.WallMs) +
            ", \"cold_ms\": " + std::to_string(R.ColdMs) +
            ", \"peak_tracked_bytes\": " + std::to_string(R.PeakBytes) +
            ", \"metrics\": " + R.MetricsJson + "}";
    Json += I + 1 == Rows.size() ? "\n" : ",\n";
  }
  Json += "  ],\n";
  Json += "  \"memory\": [\n";
  for (size_t I = 0; I != MemRows.size(); ++I) {
    const MemoryRow &M = MemRows[I];
    uint64_t Interned = M.InternedHits + M.InternedMisses;
    Json += "    {\"suite\": \"";
    appendJsonEscaped(Json, M.Suite);
    Json += "\", \"kind\": \"LCD+HCD\", \"arena_peak_bytes\": " +
            std::to_string(M.ArenaPeakBytes) +
            ", \"arena_peak_slabs\": " + std::to_string(M.ArenaPeakSlabs) +
            ", \"interned_hits\": " + std::to_string(M.InternedHits) +
            ", \"interned_misses\": " + std::to_string(M.InternedMisses) +
            ", \"interned_hit_rate\": " +
            std::to_string(Interned ? double(M.InternedHits) /
                                          double(Interned)
                                    : 0.0) +
            ", \"peak_bitmap_bytes\": " +
            std::to_string(M.PeakBitmapBytes) +
            ", \"physical_set_bytes\": " +
            std::to_string(M.PhysicalSetBytes) +
            ", \"routed_set_bytes\": " + std::to_string(M.RoutedSetBytes) +
            "}";
    Json += I + 1 == MemRows.size() ? "\n" : ",\n";
  }
  Json += "  ],\n";
  Json += "  \"parallel_lcdhcd\": [\n";
  for (size_t I = 0; I != ParRows.size(); ++I) {
    const ParallelRow &P = ParRows[I];
    Json += "    {\"suite\": \"";
    appendJsonEscaped(Json, P.Suite);
    Json += "\", \"threads\": " + std::to_string(P.Threads) +
            ", \"wall_ms\": " + std::to_string(P.WallMs) +
            ", \"speedup_vs_sequential\": " + std::to_string(P.Speedup) +
            ", \"scaling_vs_one_thread\": " + std::to_string(P.Scaling) +
            ", \"solution_identical\": " +
            (P.Identical ? "true" : "false") +
            ", \"metrics\": " + P.MetricsJson + "}";
    Json += I + 1 == ParRows.size() ? "\n" : ",\n";
  }
  Json += "  ],\n";
  Json += "  \"obs_overhead\": {\"suite\": \"";
  appendJsonEscaped(Json, GuardSuite.Name);
  Json += "\", \"kind\": \"LCD\", \"repr\": \"bitmap\", \"reps\": " +
          std::to_string(OverheadReps) +
          ", \"disabled_best_ms\": " + std::to_string(DisabledBestMs) +
          ", \"enabled_best_ms\": " + std::to_string(EnabledBestMs) +
          ", \"enabled_over_disabled\": " + std::to_string(OverheadRatio) +
          "}\n";
  Json += "}\n";

  if (std::FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::printf("\nwrote %s (host cores: %u)\n", OutPath.c_str(), HostCores);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("parallel solutions bit-identical to sequential: %s\n",
              AllIdentical ? "yes" : "NO — BUG");
  return AllIdentical ? 0 : 1;
}
