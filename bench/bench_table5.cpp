//===- bench_table5.cpp - Solve times, BDD points-to (Table 5) ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 5: solve times when points-to sets are per-variable
/// BDDs sharing one manager (BLQ is unchanged — it is already fully
/// BDD-based, so it is omitted here as in the paper's table).
///
/// Expected shape (paper): on average about 2x slower than bitmaps, with
/// most of the extra time in allsat-style set iteration; PKH and HCD —
/// the heaviest propagators — benefit most from cheap BDD unions.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Table 5: performance (seconds), BDD points-to sets",
              "Table 5", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf("\n");

  for (SolverKind Kind : AllSolverKinds) {
    if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD)
      continue; // Already BDD-relational; Table 5 lists the others.
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    for (const Suite &S : Suites) {
      RunResult R = runSolver(S, Kind, PtsRepr::Bdd);
      std::printf(" %11.4f", R.Seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
