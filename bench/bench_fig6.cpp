//===- bench_fig6.cpp - LCD+HCD vs the state of the art (Figure 6) --------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: per-suite solve time of HT, PKH, BLQ and the
/// paper's combined LCD+HCD algorithm (the paper plots these on a log
/// scale). Printed as the raw series plus the speedup of LCD+HCD over
/// each baseline.
///
/// Expected shape (paper): LCD+HCD wins on every suite — on average 3.2x
/// over HT, 6.4x over PKH, 20.6x over BLQ.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cmath>
#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Figure 6: LCD+HCD vs HT / PKH / BLQ (log-scale series)",
              "Figure 6", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  const SolverKind Kinds[] = {SolverKind::HT, SolverKind::PKH,
                              SolverKind::BLQ, SolverKind::LCDHCD};

  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf("\n");

  double Seconds[4][6] = {};
  for (unsigned K = 0; K != 4; ++K) {
    std::printf("%-11s", solverKindName(Kinds[K]));
    std::fflush(stdout);
    for (size_t I = 0; I != Suites.size(); ++I) {
      Seconds[K][I] = runSolver(Suites[I], Kinds[K], PtsRepr::Bitmap)
                          .Seconds;
      std::printf(" %11.4f", Seconds[K][I]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nspeedup of LCD+HCD (geometric mean over suites):\n");
  for (unsigned K = 0; K != 3; ++K) {
    double LogSum = 0;
    for (size_t I = 0; I != Suites.size(); ++I)
      LogSum += std::log(Seconds[K][I] / Seconds[3][I]);
    std::printf("  vs %-4s %.2fx\n", solverKindName(Kinds[K]),
                std::exp(LogSum / Suites.size()));
  }
  return 0;
}
