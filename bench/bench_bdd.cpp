//===- bench_bdd.cpp - Microbenchmarks for the BDD package ----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the ROBDD engine: set insertions,
/// unions, relational products and allsat iteration over finite domains —
/// the operation mix BLQ and the per-variable-BDD representation drive.
///
//===----------------------------------------------------------------------===//

#include "adt/Rng.h"
#include "bdd/BddDomain.h"

#include <benchmark/benchmark.h>

using namespace ag;

namespace {

void BM_BddSetInsert(benchmark::State &State) {
  uint64_t DomainSize = static_cast<uint64_t>(State.range(0));
  for (auto _ : State) {
    BddManager Mgr(1 << 14);
    BddDomains Doms(Mgr, {DomainSize});
    Rng R(1);
    Bdd Set = Mgr.falseBdd();
    for (int I = 0; I != 500; ++I)
      Set = Mgr.bddOr(Set, Doms.element(0, R.nextBelow(DomainSize)));
    benchmark::DoNotOptimize(Set.ref());
  }
}
BENCHMARK(BM_BddSetInsert)->Arg(1 << 10)->Arg(1 << 16);

void BM_BddUnion(benchmark::State &State) {
  BddManager Mgr(1 << 16);
  BddDomains Doms(Mgr, {1 << 16});
  Rng R(2);
  Bdd A = Mgr.falseBdd(), B = Mgr.falseBdd();
  for (int I = 0; I != 1000; ++I) {
    A = Mgr.bddOr(A, Doms.element(0, R.nextBelow(1 << 16)));
    B = Mgr.bddOr(B, Doms.element(0, R.nextBelow(1 << 16)));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(Mgr.bddOr(A, B).ref());
}
BENCHMARK(BM_BddUnion);

void BM_BddRelProd(benchmark::State &State) {
  // The BLQ propagation step: edges(D1,D3) x pts(D3,D2).
  BddManager Mgr(1 << 18);
  BddDomains Doms(Mgr, {4096, 4096, 4096});
  Rng R(3);
  Bdd Edges = Mgr.falseBdd(), Pts = Mgr.falseBdd();
  for (int I = 0; I != 800; ++I) {
    Edges = Mgr.bddOr(Edges,
                      Mgr.bddAnd(Doms.element(0, R.nextBelow(4096)),
                                 Doms.element(1, R.nextBelow(4096))));
    Pts = Mgr.bddOr(Pts, Mgr.bddAnd(Doms.element(1, R.nextBelow(4096)),
                                    Doms.element(2, R.nextBelow(4096))));
  }
  BddVarSetId Q = Doms.varSet(1);
  for (auto _ : State)
    benchmark::DoNotOptimize(Mgr.relProd(Edges, Pts, Q).ref());
}
BENCHMARK(BM_BddRelProd);

void BM_BddAllSat(benchmark::State &State) {
  // The "bdd_allsat" cost the paper blames for the BDD slowdown.
  BddManager Mgr(1 << 16);
  BddDomains Doms(Mgr, {1 << 14});
  Rng R(4);
  Bdd Set = Mgr.falseBdd();
  for (int I = 0; I != 1000; ++I)
    Set = Mgr.bddOr(Set, Doms.element(0, R.nextBelow(1 << 14)));
  for (auto _ : State) {
    uint64_t Sum = 0;
    Doms.forEachElement(Set, 0, [&](uint64_t V) { Sum += V; });
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_BddAllSat);

void BM_BddReplace(benchmark::State &State) {
  BddManager Mgr(1 << 16);
  BddDomains Doms(Mgr, {1 << 14, 1 << 14});
  Rng R(5);
  Bdd Set = Mgr.falseBdd();
  for (int I = 0; I != 1000; ++I)
    Set = Mgr.bddOr(Set, Doms.element(0, R.nextBelow(1 << 14)));
  BddPairingId P = Doms.pairing(0, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(Mgr.replace(Set, P).ref());
}
BENCHMARK(BM_BddReplace);

} // namespace

BENCHMARK_MAIN();
