//===- BenchHarness.h - Shared benchmark plumbing ---------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common plumbing for the table/figure reproduction binaries: generate
/// the six paper-shaped suites, run OVS and the HCD offline pass, time
/// solver runs, and track peak memory per run. Every bench binary reads
/// the scale factor from argv[1] or the AG_BENCH_SCALE environment
/// variable (default 0.25; scale 1.0 approximates the paper's sizes / 8).
///
//===----------------------------------------------------------------------===//

#ifndef AG_BENCH_BENCHHARNESS_H
#define AG_BENCH_BENCHHARNESS_H

#include "constraints/OfflineVariableSubstitution.h"
#include "core/HcdOffline.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <string>
#include <vector>

namespace ag {
namespace bench {

/// One generated-and-preprocessed benchmark suite.
struct Suite {
  std::string Name;
  uint64_t RawConstraints = 0;
  ConstraintSystem Reduced; ///< After OVS (the paper solves these).
  std::vector<NodeId> Rep;  ///< OVS representative map.
  HcdResult Hcd;
  double OvsSeconds = 0;
  double HcdOfflineSeconds = 0;
  uint64_t NumBase = 0, NumSimple = 0, NumComplex = 0;
};

/// Resolves the scale factor: argv[1] if present, else AG_BENCH_SCALE,
/// else \p Default.
double scaleFromArgs(int Argc, char **Argv, double Default = 0.12);

/// Generates and preprocesses all six suites at \p Scale.
std::vector<Suite> loadSuites(double Scale);

/// Result of one timed solver run.
struct RunResult {
  double Seconds = 0;
  SolverStats Stats;
  uint64_t PeakBitmapBytes = 0;
  uint64_t PeakBddBytes = 0;
  uint64_t SolutionHash = 0;
  uint64_t TotalPtsSize = 0;
  /// Memory-kernel counters for the run (arena slab high-water mark,
  /// set-interning tallies, and the extracted solution's sharing ratio).
  uint64_t ArenaPeakBytes = 0;
  uint64_t ArenaPeakSlabs = 0;
  uint64_t InternedHits = 0;
  uint64_t InternedMisses = 0;
  uint64_t PhysicalSetBytes = 0; ///< Bytes of distinct solution sets.
  uint64_t RoutedSetBytes = 0;   ///< Bytes if every rep held a private copy.
  /// Compact "ag.metrics.v5" JSON for this run, captured when the run was
  /// made with CaptureMetrics (empty otherwise). Bench binaries embed it
  /// verbatim into their BENCH_*.json rows instead of hand-plumbing
  /// individual counter fields.
  std::string MetricsJson;

  double peakMb() const {
    return double(PeakBitmapBytes + PeakBddBytes) / (1024.0 * 1024.0);
  }
};

/// Times one solve of \p S with \p Kind/\p Repr, capturing stats and peak
/// tracked memory. The HCD offline result is reused (its cost is reported
/// separately, as in Table 3).
RunResult runSolver(const Suite &S, SolverKind Kind, PtsRepr Repr);

/// As above, with explicit solver options — e.g. SolverOptions::Threads to
/// route LCD / LCD+HCD through the parallel wavefront solver. With
/// \p CaptureMetrics, the metrics channel is enabled and reset around the
/// solve and the run's registry snapshot lands in RunResult::MetricsJson.
RunResult runSolver(const Suite &S, SolverKind Kind, PtsRepr Repr,
                    const SolverOptions &Opts, bool CaptureMetrics = false);

/// Prints the standard header naming the experiment.
void printHeader(const char *Experiment, const char *PaperRef,
                 double Scale);

} // namespace bench
} // namespace ag

#endif // AG_BENCH_BENCHHARNESS_H
