//===- bench_ablation.cpp - Design-choice ablations -----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the design choices DESIGN.md calls out:
///  * the LRF divided worklist vs a single LRF list vs plain FIFO
///    (the paper: "the divided worklist yields significantly better
///    performance than a single worklist");
///  * LCD's never-retrigger-the-same-edge rule (rule R of Figure 2);
///  * OVS preprocessing on vs off.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "solvers/Pkh03Solver.h"

#include <chrono>
#include <cstdio>

using namespace ag;
using namespace ag::bench;

namespace {

double timedSolve(const Suite &S, SolverKind Kind,
                  const SolverOptions &Opts, SolverStats *Stats = nullptr) {
  auto T0 = std::chrono::steady_clock::now();
  solve(S.Reduced, Kind, PtsRepr::Bitmap, Stats, Opts, &S.Rep,
        usesHcd(Kind) ? &S.Hcd : nullptr);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Ablations: worklist policy, LCD edge rule, OVS",
              "Section 5.1 implementation notes", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);

  std::printf("\n-- worklist policy (LCD+HCD solve seconds)\n");
  std::printf("  %-12s %12s %12s %12s\n", "suite", "divided-lrf",
              "single-lrf", "fifo");
  for (const Suite &S : Suites) {
    SolverOptions Divided, Single, Fifo;
    Divided.Worklist = WorklistPolicy::DividedLrf;
    Single.Worklist = WorklistPolicy::Lrf;
    Fifo.Worklist = WorklistPolicy::Fifo;
    std::printf("  %-12s %12.4f %12.4f %12.4f\n", S.Name.c_str(),
                timedSolve(S, SolverKind::LCDHCD, Divided),
                timedSolve(S, SolverKind::LCDHCD, Single),
                timedSolve(S, SolverKind::LCDHCD, Fifo));
  }

  std::printf("\n-- LCD retrigger suppression (LCD solve seconds, cycle "
              "detection attempts)\n");
  std::printf("  %-12s %12s %12s %14s %14s\n", "suite", "edge-once",
              "always", "attempts-once", "attempts-alw");
  for (const Suite &S : Suites) {
    SolverOptions Once, Always;
    Once.LcdEdgeOnce = true;
    Always.LcdEdgeOnce = false;
    SolverStats StatsOnce, StatsAlways;
    double TOnce = timedSolve(S, SolverKind::LCD, Once, &StatsOnce);
    double TAlways = timedSolve(S, SolverKind::LCD, Always, &StatsAlways);
    std::printf("  %-12s %12.4f %12.4f %14llu %14llu\n", S.Name.c_str(),
                TOnce, TAlways,
                static_cast<unsigned long long>(
                    StatsOnce.CycleDetectAttempts),
                static_cast<unsigned long long>(
                    StatsAlways.CycleDetectAttempts));
  }

  std::printf("\n-- difference resolution of complex constraints (LCD+HCD "
              "solve seconds)\n");
  std::printf("  %-12s %12s %12s\n", "suite", "frontier", "full-rescan");
  for (const Suite &S : Suites) {
    SolverOptions On, Off;
    Off.DifferenceResolution = false;
    std::printf("  %-12s %12.4f %12.4f\n", S.Name.c_str(),
                timedSolve(S, SolverKind::LCDHCD, On),
                timedSolve(S, SolverKind::LCDHCD, Off));
  }

  std::printf("\n-- eager per-insertion cycle detection (Pearce et al. "
              "2003)\n");
  std::printf("   The paper: such aggressive approaches are \"an order of "
              "magnitude slower\".\n");
  std::printf("  %-12s %12s %12s %10s\n", "suite", "pkh03(s)", "pkh04(s)",
              "slowdown");
  for (const Suite &S : Suites) {
    SolverStats St03;
    auto T0 = std::chrono::steady_clock::now();
    Pkh03Solver<BitmapPtsPolicy> Solver03(S.Reduced, St03, SolverOptions(),
                                          &S.Rep);
    Solver03.solve();
    double T03 = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    double T04 = timedSolve(S, SolverKind::PKH, SolverOptions());
    std::printf("  %-12s %12.4f %12.4f %9.1fx\n", S.Name.c_str(), T03,
                T04, T03 / T04);
  }

  std::printf("\n-- OVS preprocessing (LCD+HCD solve seconds)\n");
  std::printf("  %-12s %12s %12s %10s %10s\n", "suite", "with-ovs",
              "without", "cons-with", "cons-without");
  for (const BenchmarkSpec &Spec : paperSuites(Scale)) {
    ConstraintSystem Raw = generateBenchmark(Spec);
    OvsResult Ovs = runOfflineVariableSubstitution(Raw);
    HcdResult HcdRaw = runHcdOffline(Raw);
    HcdResult HcdRed = runHcdOffline(Ovs.Reduced);

    auto T0 = std::chrono::steady_clock::now();
    solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
          SolverOptions(), &Ovs.Rep, &HcdRed);
    double TWith = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();

    auto T1 = std::chrono::steady_clock::now();
    solve(Raw, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
          SolverOptions(), nullptr, &HcdRaw);
    double TWithout = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - T1)
                          .count();

    std::printf("  %-12s %12.4f %12.4f %10zu %10zu\n", Spec.Name.c_str(),
                TWith, TWithout, Ovs.Reduced.constraints().size(),
                Raw.constraints().size());
  }
  return 0;
}
