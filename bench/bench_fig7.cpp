//===- bench_fig7.cpp - Main algorithms normalized to LCD (Figure 7) ------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7: per-suite times of HT, PKH, BLQ and HCD
/// normalized by LCD's time (bars > 1 mean slower than LCD).
///
/// Expected shape (paper): HT about 1.05x LCD; PKH about 2x; BLQ about
/// 7x; standalone HCD between HT and PKH (and it runs out of memory on
/// wine in the paper — here it just uses the most memory).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Figure 7: time normalized to LCD (per suite)", "Figure 7",
              Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  const SolverKind Kinds[] = {SolverKind::HT, SolverKind::PKH,
                              SolverKind::BLQ, SolverKind::HCD};

  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf("\n");

  std::vector<double> LcdSeconds;
  std::printf("%-11s", "LCD");
  for (const Suite &S : Suites) {
    LcdSeconds.push_back(runSolver(S, SolverKind::LCD, PtsRepr::Bitmap)
                             .Seconds);
    std::printf(" %11.2f", 1.0);
  }
  std::printf("   (baseline)\n");

  for (SolverKind Kind : Kinds) {
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    for (size_t I = 0; I != Suites.size(); ++I) {
      double T = runSolver(Suites[I], Kind, PtsRepr::Bitmap).Seconds;
      std::printf(" %11.2f", T / LcdSeconds[I]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
