//===- bench_queries.cpp - Query serving + warm-start benchmark -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer numbers: per suite, snapshot size and load time,
/// query throughput on a repeated mix (pointsTo / alias / pointedBy) with
/// the result cache on vs off (capacity 0 — identical code path), the
/// warm-start re-solve of a constraint delta against a cold solve of the
/// full system, and the demand tier: the distribution of fresh
/// first-answer latencies over a pool sample (each node on its own
/// DemandSolver) vs a cold exhaustive solve — headline speedup on the
/// fastest targeted query, median and max published alongside — plus
/// the memo warm-up curve over a query sequence. Timed sections follow the
/// bench_solvers discipline — the first repetition is the cold number,
/// the min of three the steady-state (min, not mean — noise is
/// one-sided). Results land in BENCH_queries.json (argv[2] or the
/// working directory). Exits non-zero only on correctness failures
/// (cached answers diverging from uncached, warm solution diverging from
/// cold, demand answers diverging from exhaustive); ratios are reported,
/// not gated.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "adt/Rng.h"
#include "demand/DemandSolver.h"
#include "demand/DemandTier.h"
#include "obs/EventLog.h"
#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"
#include "serve/IncrementalSolver.h"
#include "serve/QueryEngine.h"
#include "serve/ServeSession.h"
#include "serve/Server.h"
#include "serve/Snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ag;
using namespace ag::bench;

namespace {

struct QueryRow {
  std::string Suite;
  uint64_t SnapshotBytes = 0;
  double SnapshotLoadMs = 0;
  double UncachedQps = 0;
  double CachedQps = 0;
  double CacheSpeedup = 0;
  double HitRate = 0;
  double ColdSolveMs = 0;
  double WarmSolveMs = 0;
  double WarmSpeedup = 0;
  uint64_t DeltaConstraints = 0;
  double DemandFirstMs = 0;     ///< Best targeted first answer in the sample.
  double DemandMedianMs = 0;    ///< Median fresh first answer in the sample.
  double DemandMaxMs = 0;       ///< Worst fresh first answer in the sample.
  double DemandColdMs = 0;      ///< Cold exhaustive solve + same answer.
  double DemandSpeedup = 0;     ///< DemandColdMs / DemandFirstMs.
  uint64_t DemandSteps = 0;     ///< Deduction steps of the targeted query.
  unsigned DemandSampleN = 0;   ///< Pool nodes sampled for the distribution.
  std::string WarmupJson;       ///< Memo warm-up curve (JSON array).
  std::string MetricsJson; ///< Compact ag.metrics.v5 object for the suite.
};

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S)
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else {
      Out += C;
    }
}

/// Discards everything written to it — keeps reply formatting in the
/// timed path without growing a buffer.
struct NullBuffer : std::streambuf {
  int overflow(int C) override { return C; }
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One repeated query mix: \p NumQueries drawn from a small pool so keys
/// repeat heavily (the serving workload caches exist for). Returns
/// queries/sec; accumulates a result fingerprint into \p Fingerprint so
/// cached and uncached runs can be compared for identical answers.
double runMix(QueryEngine &Engine, const std::vector<NodeId> &Pool,
              size_t NumQueries, uint64_t Seed, uint64_t &Fingerprint) {
  Rng R(Seed);
  uint64_t Fp = 0;
  auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I != NumQueries; ++I) {
    NodeId A = Pool[R.nextBelow(Pool.size())];
    switch (R.nextBelow(4)) {
    case 0:
    case 1: { // 50% pointsTo.
      auto List = Engine.pointsTo(A);
      Fp = Fp * 1099511628211ull + List->size();
      break;
    }
    case 2: { // 25% alias.
      NodeId B = Pool[R.nextBelow(Pool.size())];
      Fp = Fp * 1099511628211ull + (Engine.alias(A, B) ? 1 : 2);
      break;
    }
    default: { // 25% pointedBy.
      QueryEngine::IdList List;
      if (!Engine.pointedBy(A, List).ok())
        return 0; // Unbudgeted here; cannot trip.
      Fp = Fp * 1099511628211ull + List->size();
      break;
    }
    }
  }
  double Seconds = secondsSince(T0);
  Fingerprint = Fp;
  return Seconds > 0 ? double(NumQueries) / Seconds : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  std::string OutPath =
      Argc > 2 ? Argv[2] : std::string("BENCH_queries.json");
  printHeader("Query serving: snapshots, cache, warm-start re-solve",
              "serving extension", Scale);

  constexpr size_t NumQueries = 40000;
  constexpr size_t PoolSize = 128;
  constexpr double DeltaFrac = 0.05;
  // First repetition = cold, min of all = steady state (bench_solvers
  // discipline).
  constexpr int BenchReps = 3;

  std::vector<Suite> Suites = loadSuites(Scale);
  std::vector<QueryRow> Rows;
  bool Correct = true;

  // One ag.metrics.v5 snapshot per suite covering the whole serving
  // story: snapshot load, query mixes (LRU hits/misses), cold solve and
  // warm re-solve. Embedded into the JSON rows below.
  obs::setMetricsEnabled(true);

  for (const Suite &S : Suites) {
    obs::MetricsRegistry::instance().reset();
    QueryRow Row;
    Row.Suite = S.Name;

    // --- Snapshot: build, persist, time the load. -----------------------
    Snapshot Snap;
    Snap.Solution = solve(S.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                          nullptr, SolverOptions(), &S.Rep);
    Snap.CS = S.Reduced;
    Snap.SeedReps = S.Rep;
    std::string SnapPath = OutPath + "." + S.Name + ".snap.tmp";
    if (Status St = writeSnapshotFile(Snap, SnapPath); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return 1;
    }
    Snapshot Loaded;
    auto T0 = std::chrono::steady_clock::now();
    if (Status St = readSnapshotFile(SnapPath, Loaded); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return 1;
    }
    Row.SnapshotLoadMs = secondsSince(T0) * 1e3;
    std::remove(SnapPath.c_str());
    {
      std::string Bytes;
      (void)writeSnapshotBytes(Snap, Bytes);
      Row.SnapshotBytes = Bytes.size();
    }

    // --- Query throughput, cache on vs off. -----------------------------
    const uint32_t N = Loaded.CS.numNodes();
    std::vector<NodeId> Pool;
    Rng PoolR(S.Name.size() * 131 + 7);
    for (size_t I = 0; I != PoolSize; ++I)
      Pool.push_back(static_cast<NodeId>(PoolR.nextBelow(N)));

    QueryEngine::Options Uncached;
    Uncached.CacheCapacity = 0;
    QueryEngine Cold(Loaded, Uncached);
    QueryEngine Warm(std::move(Loaded)); // Default cache.

    uint64_t FpUncached = 0, FpCached = 0;
    Row.UncachedQps = runMix(Cold, Pool, NumQueries, 1234, FpUncached);
    Row.CachedQps = runMix(Warm, Pool, NumQueries, 1234, FpCached);
    for (int Rep = 1; Rep != BenchReps; ++Rep) {
      uint64_t Fp = 0;
      Row.UncachedQps =
          std::max(Row.UncachedQps, runMix(Cold, Pool, NumQueries, 1234, Fp));
      Row.CachedQps =
          std::max(Row.CachedQps, runMix(Warm, Pool, NumQueries, 1234, Fp));
    }
    Row.CacheSpeedup =
        Row.UncachedQps > 0 ? Row.CachedQps / Row.UncachedQps : 0;
    CacheStats CS = Warm.cacheStats();
    Row.HitRate = CS.Hits + CS.Misses > 0
                      ? double(CS.Hits) / double(CS.Hits + CS.Misses)
                      : 0;
    if (FpUncached != FpCached) {
      std::fprintf(stderr, "BUG: cached answers diverge on %s\n",
                   S.Name.c_str());
      Correct = false;
    }

    // --- Warm-start re-solve vs cold solve of the full system. ----------
    DeltaSplit Split = splitDelta(S.Reduced, DeltaFrac, 4242);
    Row.DeltaConstraints = Split.Delta.size();
    Snapshot BaseSnap;
    BaseSnap.Solution = solve(Split.Base, SolverKind::LCDHCD);
    BaseSnap.CS = Split.Base;
    BaseSnap.SeedReps.resize(Split.Base.numNodes());
    for (NodeId V = 0; V != Split.Base.numNodes(); ++V)
      BaseSnap.SeedReps[V] = V;

    ConstraintSystem FullCS = Split.Base;
    for (const Constraint &C : Split.Delta)
      FullCS.add(C);
    T0 = std::chrono::steady_clock::now();
    PointsToSolution ColdSol = solve(FullCS, SolverKind::LCDHCD);
    Row.ColdSolveMs = secondsSince(T0) * 1e3;
    for (int Rep = 1; Rep != BenchReps; ++Rep) {
      T0 = std::chrono::steady_clock::now();
      PointsToSolution Again = solve(FullCS, SolverKind::LCDHCD);
      Row.ColdSolveMs = std::min(Row.ColdSolveMs, secondsSince(T0) * 1e3);
    }

    // Each repetition re-solves from a fresh copy of the base snapshot —
    // re-resolving an already-folded solver would dedup the whole delta
    // and time nothing.
    WarmStartResult R;
    for (int Rep = 0; Rep != BenchReps; ++Rep) {
      Snapshot BaseCopy = BaseSnap;
      IncrementalSolver Inc(std::move(BaseCopy));
      T0 = std::chrono::steady_clock::now();
      WarmStartResult RepR = Inc.resolve(Split.Delta);
      double Ms = secondsSince(T0) * 1e3;
      if (Rep == 0) {
        Row.WarmSolveMs = Ms;
        R = std::move(RepR);
      } else {
        Row.WarmSolveMs = std::min(Row.WarmSolveMs, Ms);
      }
    }
    Row.WarmSpeedup =
        Row.WarmSolveMs > 0 ? Row.ColdSolveMs / Row.WarmSolveMs : 0;
    if (R.Outcome != SolveOutcome::Precise || !(R.Solution == ColdSol)) {
      std::fprintf(stderr, "BUG: warm re-solve diverges on %s\n",
                   S.Name.c_str());
      Correct = false;
    }

    // --- Demand tier: first-answer latency vs a cold full solve. --------
    // The demand claim is about time-to-first-answer: a fresh solver
    // deduces one node's set without solving the system. How much that
    // buys depends entirely on the query's backward slice, so the bench
    // measures a distribution over a pool sample — each node queried on
    // its own fresh solver, min-of-3 per node — and reports
    // first_query_ms as the fastest targeted query (the tier's design
    // point: a client asking about one local pointer) alongside the
    // median and worst case, where dense graphs degenerate to a
    // whole-graph frontier and demand approaches the cost of a solve.
    {
      const size_t SampleN = std::min<size_t>(32, Pool.size());
      std::vector<double> SampleMs(SampleN, 0);
      std::vector<uint64_t> SampleSteps(SampleN, 0);
      PointsToSolution ReducedSol = solve(S.Reduced, SolverKind::LCDHCD);
      for (size_t Q = 0; Q != SampleN; ++Q) {
        NodeId Node = Pool[Q];
        for (int Rep = 0; Rep != BenchReps; ++Rep) {
          const uint64_t Steps0 =
              obs::MetricsRegistry::instance().counterValue(
                  obs::Counter::DemandSteps);
          DemandSolver DS(S.Reduced);
          SparseBitVector Bits;
          T0 = std::chrono::steady_clock::now();
          Status St = DS.pointsTo(Node, nullptr, Bits);
          double Ms = secondsSince(T0) * 1e3;
          if (!St.ok()) {
            std::fprintf(stderr, "BUG: demand pointsTo failed on %s: %s\n",
                         S.Name.c_str(), St.toString().c_str());
            Correct = false;
            break;
          }
          if (Rep == 0) {
            SampleMs[Q] = Ms;
            SampleSteps[Q] = obs::MetricsRegistry::instance().counterValue(
                                 obs::Counter::DemandSteps) -
                             Steps0;
            SparseBitVector ExactBits;
            for (NodeId O : ReducedSol.pointsToVector(Node))
              ExactBits.set(O);
            if (!(Bits == ExactBits)) {
              std::fprintf(stderr,
                           "BUG: demand answer diverges from exhaustive on "
                           "%s node %u\n",
                           S.Name.c_str(), Node);
              Correct = false;
            }
          } else {
            SampleMs[Q] = std::min(SampleMs[Q], Ms);
          }
        }
      }
      size_t Best = 0;
      for (size_t Q = 1; Q != SampleN; ++Q)
        if (SampleMs[Q] < SampleMs[Best])
          Best = Q;
      std::vector<double> Sorted = SampleMs;
      std::sort(Sorted.begin(), Sorted.end());
      Row.DemandSampleN = static_cast<unsigned>(SampleN);
      Row.DemandFirstMs = Sorted.empty() ? 0 : Sorted.front();
      Row.DemandMedianMs = Sorted.empty() ? 0 : Sorted[Sorted.size() / 2];
      Row.DemandMaxMs = Sorted.empty() ? 0 : Sorted.back();
      Row.DemandSteps = SampleSteps[Best];
      NodeId TargetQ = Pool[Best];
      for (int Rep = 0; Rep != BenchReps; ++Rep) {
        T0 = std::chrono::steady_clock::now();
        PointsToSolution Exact = solve(S.Reduced, SolverKind::LCDHCD);
        volatile size_t Touch = Exact.pointsToVector(TargetQ).size();
        (void)Touch;
        double Ms = secondsSince(T0) * 1e3;
        Row.DemandColdMs =
            Rep == 0 ? Ms : std::min(Row.DemandColdMs, Ms);
      }
      Row.DemandSpeedup =
          Row.DemandFirstMs > 0 ? Row.DemandColdMs / Row.DemandFirstMs : 0;
    }

    // --- Demand memo warm-up: certified classes and LRU hits over a
    // query sequence against one tier. ------------------------------------
    {
      DemandTier Tier(S.Reduced);
      std::string Curve = "[";
      size_t Done = 0;
      constexpr size_t Batch = 16;
      for (size_t I = 0; I != Pool.size(); ++I) {
        DemandTier::IdList List;
        (void)Tier.pointsTo(Pool[I], List);
        if (++Done % Batch == 0 || I + 1 == Pool.size()) {
          CacheStats TS = Tier.cacheStats();
          if (Curve.size() > 1)
            Curve += ", ";
          Curve += "{\"queries\": " + std::to_string(Done) +
                   ", \"memo_complete\": " +
                   std::to_string(Tier.memoCompleteCount()) +
                   ", \"lru_hits\": " + std::to_string(TS.Hits) + "}";
        }
      }
      Curve += "]";
      Row.WarmupJson = std::move(Curve);
    }

    std::printf("%-14s load %6.2f ms  qps %9.0f -> %9.0f (x%5.1f, hit "
                "%4.1f%%)  re-solve %8.2f -> %8.2f ms (x%5.1f, %llu new)\n",
                S.Name.c_str(), Row.SnapshotLoadMs, Row.UncachedQps,
                Row.CachedQps, Row.CacheSpeedup, Row.HitRate * 100,
                Row.ColdSolveMs, Row.WarmSolveMs, Row.WarmSpeedup,
                static_cast<unsigned long long>(Row.DeltaConstraints));
    std::printf("%-14s demand first-answer %8.3f ms (median %8.3f, max "
                "%8.2f over %u) vs cold solve %8.2f ms (x%6.1f, %llu "
                "steps)\n",
                "", Row.DemandFirstMs, Row.DemandMedianMs, Row.DemandMaxMs,
                Row.DemandSampleN, Row.DemandColdMs, Row.DemandSpeedup,
                static_cast<unsigned long long>(Row.DemandSteps));
    Row.MetricsJson =
        obs::MetricsRegistry::instance().renderJson(/*Compact=*/true);
    Rows.push_back(std::move(Row));
  }
  obs::setMetricsEnabled(false);

  // --- Request-telemetry overhead guardrail. ----------------------------
  // Drives the same REPL mix through ServeSession::handleLine twice: all
  // observability channels off vs the full serve telemetry (metrics +
  // latency quantiles + wide events into an async EventLog). The ratio
  // bounds what per-request tracing costs on the cached serving hot path
  // and is gated by tools/check_perf.py.
  const Suite *Guard = &Suites.front();
  for (const Suite &S : Suites)
    if (S.RawConstraints > Guard->RawConstraints)
      Guard = &S;
  constexpr size_t TelemetryRequests = 20000;
  constexpr int TelemetryReps = 3;
  double TelemetryOffMs = 0, TelemetryOnMs = 0;
  {
    Snapshot Snap;
    Snap.Solution = solve(Guard->Reduced, SolverKind::LCDHCD,
                          PtsRepr::Bitmap, nullptr, SolverOptions(),
                          &Guard->Rep);
    Snap.CS = Guard->Reduced;
    Snap.SeedReps = Guard->Rep;

    const uint32_t N = Snap.CS.numNodes();
    std::vector<std::string> Lines;
    Rng MixR(97);
    for (size_t I = 0; I != TelemetryRequests; ++I) {
      uint32_t A = uint32_t(MixR.nextBelow(N));
      switch (MixR.nextBelow(4)) {
      case 0:
      case 1:
        Lines.push_back("pts " + std::to_string(A));
        break;
      case 2:
        Lines.push_back("alias " + std::to_string(A) + " " +
                        std::to_string(uint32_t(MixR.nextBelow(N))));
        break;
      default:
        Lines.push_back("pointedby " + std::to_string(A));
        break;
      }
    }

    NullBuffer Discard;
    std::ostream Null(&Discard);
    auto RunReps = [&](ServeSession &Session) {
      double Best = 0;
      for (int Rep = 0; Rep != TelemetryReps; ++Rep) {
        auto T0 = std::chrono::steady_clock::now();
        for (const std::string &L : Lines)
          Session.handleLine(L, Null);
        double Ms = secondsSince(T0) * 1e3;
        if (Rep == 0 || Ms < Best)
          Best = Ms;
      }
      return Best;
    };

    uint32_t SavedChannels = obs::ChannelBits.load(std::memory_order_relaxed);
    obs::ChannelBits.store(0, std::memory_order_relaxed);
    {
      Snapshot Copy = Snap;
      ServeSession Session(std::move(Copy));
      TelemetryOffMs = RunReps(Session);
    }

    obs::setMetricsEnabled(true);
    obs::MetricsRegistry::instance().reset();
    {
      NullBuffer EventDiscard;
      std::ostream EventNull(&EventDiscard);
      auto Events = std::make_shared<obs::EventLog>(EventNull);
      ServeOptions SO;
      SO.Events = Events;
      ServeSession Session(std::move(Snap), SO);
      TelemetryOnMs = RunReps(Session);
      Events->close();
    }
    obs::MetricsRegistry::instance().reset();
    obs::ChannelBits.store(SavedChannels, std::memory_order_relaxed);
  }
  double TelemetryRatio =
      TelemetryOffMs > 0 ? TelemetryOnMs / TelemetryOffMs : 0;
  std::printf("\ntelemetry overhead (%s, %zu requests, best of %d): off "
              "%.2f ms, events+quantiles %.2f ms, ratio %.3f\n",
              Guard->Name.c_str(), TelemetryRequests, TelemetryReps,
              TelemetryOffMs, TelemetryOnMs, TelemetryRatio);

  // --- Concurrent serve: aggregate QPS vs connection count. -------------
  // The networked front-end keeps each connection's pipeline ordered, so
  // one client exercises at most one worker at a time and aggregate
  // throughput has to come from multiplexing across connections. Each
  // client pipelines a seeded cached-query mix over loopback TCP and
  // reads to EOF (the trailing `quit` makes the server close the
  // connection); QPS is total requests / wall seconds, best of three reps
  // per level — the first rep doubles as result-cache warm-up.
  constexpr unsigned ServeLevels[] = {1, 4, 8};
  constexpr size_t ServeNumLevels = sizeof(ServeLevels) / sizeof(ServeLevels[0]);
  constexpr unsigned ServeMaxClients = 8;
  constexpr unsigned ServeWorkers = 8;
  constexpr size_t ServeQueriesPerClient = 2000;
  constexpr int ServeReps = 3;
  double ServeQpsByLevel[ServeNumLevels] = {};
  bool ServeOk = true;
  {
    Snapshot Snap;
    Snap.Solution = solve(Guard->Reduced, SolverKind::LCDHCD,
                          PtsRepr::Bitmap, nullptr, SolverOptions(),
                          &Guard->Rep);
    Snap.CS = Guard->Reduced;
    Snap.SeedReps = Guard->Rep;
    const uint32_t N = Snap.CS.numNodes();
    ServeSession Session(std::move(Snap));
    ServerOptions SrvOpts;
    SrvOpts.Workers = ServeWorkers;
    Server Srv(Session, SrvOpts);
    Status St = Srv.start();
    if (!St.ok()) {
      std::fprintf(stderr, "error: concurrent serve bench: %s\n",
                   St.toString().c_str());
      ServeOk = false;
    } else {
      const uint16_t Port = Srv.port();
      // Pool-heavy cached mix (the workload the result cache exists
      // for), one deterministic script per client seed.
      std::vector<uint32_t> ServePool;
      Rng ServePoolR(53);
      for (size_t I = 0; I != PoolSize; ++I)
        ServePool.push_back(uint32_t(ServePoolR.nextBelow(N)));
      auto MakeScript = [&](uint64_t Seed) {
        std::string Script;
        Rng MixR(1000 + Seed);
        for (size_t I = 0; I != ServeQueriesPerClient; ++I) {
          uint32_t A = ServePool[MixR.nextBelow(ServePool.size())];
          switch (MixR.nextBelow(4)) {
          case 0:
          case 1:
            Script += "pts " + std::to_string(A) + "\n";
            break;
          case 2:
            Script += "alias " + std::to_string(A) + " " +
                      std::to_string(
                          ServePool[MixR.nextBelow(ServePool.size())]) +
                      "\n";
            break;
          default:
            Script += "pointedby " + std::to_string(A) + "\n";
            break;
          }
        }
        Script += "quit\n";
        return Script;
      };
      const std::string Banner = Session.bannerText();
      const size_t BannerLines =
          size_t(std::count(Banner.begin(), Banner.end(), '\n'));
      // Sends the whole pipeline, then counts reply lines until EOF. The
      // server's poll thread drains our sends independently of the
      // workers, so the blocking one-directional phases cannot deadlock.
      auto RunClient = [&](const std::string &Script, size_t &ReplyLines) {
        int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (Fd < 0)
          return false;
        sockaddr_in Addr = {};
        Addr.sin_family = AF_INET;
        Addr.sin_port = htons(Port);
        Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)) != 0) {
          ::close(Fd);
          return false;
        }
        size_t Sent = 0;
        while (Sent < Script.size()) {
          ssize_t K = ::send(Fd, Script.data() + Sent,
                             Script.size() - Sent, MSG_NOSIGNAL);
          if (K <= 0) {
            ::close(Fd);
            return false;
          }
          Sent += size_t(K);
        }
        char Buf[1 << 16];
        size_t Count = 0;
        for (;;) {
          ssize_t K = ::recv(Fd, Buf, sizeof(Buf), 0);
          if (K <= 0)
            break;
          Count += size_t(std::count(Buf, Buf + K, '\n'));
        }
        ::close(Fd);
        ReplyLines = Count;
        return true;
      };
      std::vector<std::string> Scripts;
      for (unsigned C = 0; C != ServeMaxClients; ++C)
        Scripts.push_back(MakeScript(C));
      for (size_t L = 0; L != ServeNumLevels && ServeOk; ++L) {
        const unsigned Clients = ServeLevels[L];
        double BestQps = 0;
        for (int Rep = 0; Rep != ServeReps && ServeOk; ++Rep) {
          std::vector<std::thread> Threads;
          std::vector<size_t> Replies(Clients, 0);
          std::vector<char> ClientOk(Clients, 0);
          auto T0 = std::chrono::steady_clock::now();
          for (unsigned C = 0; C != Clients; ++C)
            Threads.emplace_back([&, C] {
              ClientOk[C] = RunClient(Scripts[C], Replies[C]) ? 1 : 0;
            });
          for (std::thread &T : Threads)
            T.join();
          double Secs = secondsSince(T0);
          for (unsigned C = 0; C != Clients; ++C)
            // Every query answers with at least one line on top of the
            // banner; fewer means dropped or truncated replies.
            if (!ClientOk[C] ||
                Replies[C] < ServeQueriesPerClient + BannerLines) {
              std::fprintf(stderr,
                           "error: concurrent serve client %u: ok=%d, "
                           "%zu reply lines (want >= %zu)\n",
                           C, int(ClientOk[C]), Replies[C],
                           ServeQueriesPerClient + BannerLines);
              ServeOk = false;
            }
          double Qps = Secs > 0 ? double(Clients) *
                                      double(ServeQueriesPerClient) / Secs
                                : 0;
          BestQps = std::max(BestQps, Qps);
        }
        ServeQpsByLevel[L] = BestQps;
        std::printf("concurrent serve (%s): %u client%s -> %.0f qps\n",
                    Guard->Name.c_str(), Clients, Clients == 1 ? "" : "s",
                    BestQps);
      }
    }
    Srv.stop();
  }
  double ServeScaling = ServeQpsByLevel[0] > 0
                            ? ServeQpsByLevel[ServeNumLevels - 1] /
                                  ServeQpsByLevel[0]
                            : 0;
  std::printf("concurrent serve scaling 1 -> %u clients: %.2fx (%u cpus, "
              "%u workers)\n",
              ServeLevels[ServeNumLevels - 1], ServeScaling,
              std::thread::hardware_concurrency(), ServeWorkers);

  std::string Json = "{\n";
  Json += "  \"scale\": " + std::to_string(Scale) + ",\n";
  Json += "  \"queries_per_mix\": " + std::to_string(NumQueries) + ",\n";
  Json += "  \"pool_size\": " + std::to_string(PoolSize) + ",\n";
  Json += "  \"delta_frac\": " + std::to_string(DeltaFrac) + ",\n";
  Json += "  \"suites\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const QueryRow &R = Rows[I];
    Json += "    {\"suite\": \"";
    appendJsonEscaped(Json, R.Suite);
    Json += "\", \"snapshot_bytes\": " + std::to_string(R.SnapshotBytes) +
            ", \"snapshot_load_ms\": " + std::to_string(R.SnapshotLoadMs) +
            ", \"uncached_qps\": " + std::to_string(R.UncachedQps) +
            ", \"cached_qps\": " + std::to_string(R.CachedQps) +
            ", \"cache_speedup\": " + std::to_string(R.CacheSpeedup) +
            ", \"cache_hit_rate\": " + std::to_string(R.HitRate) +
            ", \"cold_resolve_ms\": " + std::to_string(R.ColdSolveMs) +
            ", \"warm_resolve_ms\": " + std::to_string(R.WarmSolveMs) +
            ", \"warm_speedup\": " + std::to_string(R.WarmSpeedup) +
            ", \"delta_constraints\": " + std::to_string(R.DeltaConstraints) +
            ", \"demand\": {\"first_query_ms\": " +
            std::to_string(R.DemandFirstMs) +
            ", \"median_query_ms\": " + std::to_string(R.DemandMedianMs) +
            ", \"max_query_ms\": " + std::to_string(R.DemandMaxMs) +
            ", \"sampled_queries\": " + std::to_string(R.DemandSampleN) +
            ", \"cold_solve_ms\": " + std::to_string(R.DemandColdMs) +
            ", \"speedup\": " + std::to_string(R.DemandSpeedup) +
            ", \"steps\": " + std::to_string(R.DemandSteps) +
            ", \"warmup\": " + R.WarmupJson + "}" +
            ", \"metrics\": " + R.MetricsJson + "}";
    Json += I + 1 == Rows.size() ? "\n" : ",\n";
  }
  Json += "  ],\n";
  Json += "  \"telemetry_overhead\": {\"suite\": \"";
  appendJsonEscaped(Json, Guard->Name);
  Json += "\", \"requests\": " + std::to_string(TelemetryRequests) +
          ", \"reps\": " + std::to_string(TelemetryReps) +
          ", \"disabled_best_ms\": " + std::to_string(TelemetryOffMs) +
          ", \"enabled_best_ms\": " + std::to_string(TelemetryOnMs) +
          ", \"enabled_over_disabled\": " + std::to_string(TelemetryRatio) +
          "},\n";
  Json += "  \"concurrent_serve\": {\"suite\": \"";
  appendJsonEscaped(Json, Guard->Name);
  Json += "\", \"cpus\": " +
          std::to_string(std::thread::hardware_concurrency()) +
          ", \"workers\": " + std::to_string(ServeWorkers) +
          ", \"queries_per_client\": " +
          std::to_string(ServeQueriesPerClient) +
          ", \"reps\": " + std::to_string(ServeReps) + ", \"levels\": [";
  for (size_t L = 0; L != ServeNumLevels; ++L) {
    Json += std::string(L ? ", " : "") +
            "{\"clients\": " + std::to_string(ServeLevels[L]) +
            ", \"qps\": " + std::to_string(ServeQpsByLevel[L]) + "}";
  }
  Json += "], \"scaling_1_to_" + std::to_string(ServeLevels[ServeNumLevels - 1]) +
          "\": " + std::to_string(ServeScaling) +
          ", \"ok\": " + (ServeOk ? "true" : "false") + "}\n";
  Json += "}\n";

  if (std::FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::printf("\nwrote %s\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("cached == uncached answers, warm == cold solutions: %s\n",
              Correct ? "yes" : "NO — BUG");
  if (!ServeOk)
    std::printf("concurrent serve clients all answered: NO — BUG\n");
  return Correct && ServeOk ? 0 : 1;
}
