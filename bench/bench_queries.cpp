//===- bench_queries.cpp - Query serving + warm-start benchmark -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer numbers: per suite, snapshot size and load time,
/// query throughput on a repeated mix (pointsTo / alias / pointedBy) with
/// the result cache on vs off (capacity 0 — identical code path), and the
/// warm-start re-solve of a constraint delta against a cold solve of the
/// full system. Results land in BENCH_queries.json (argv[2] or the
/// working directory). Exits non-zero only on correctness failures
/// (cached answers diverging from uncached, warm solution diverging from
/// cold); throughput ratios are reported, not gated.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "adt/Rng.h"
#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"
#include "serve/IncrementalSolver.h"
#include "serve/QueryEngine.h"
#include "serve/Snapshot.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ag;
using namespace ag::bench;

namespace {

struct QueryRow {
  std::string Suite;
  uint64_t SnapshotBytes = 0;
  double SnapshotLoadMs = 0;
  double UncachedQps = 0;
  double CachedQps = 0;
  double CacheSpeedup = 0;
  double HitRate = 0;
  double ColdSolveMs = 0;
  double WarmSolveMs = 0;
  double WarmSpeedup = 0;
  uint64_t DeltaConstraints = 0;
  std::string MetricsJson; ///< Compact ag.metrics.v2 object for the suite.
};

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S)
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else {
      Out += C;
    }
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One repeated query mix: \p NumQueries drawn from a small pool so keys
/// repeat heavily (the serving workload caches exist for). Returns
/// queries/sec; accumulates a result fingerprint into \p Fingerprint so
/// cached and uncached runs can be compared for identical answers.
double runMix(QueryEngine &Engine, const std::vector<NodeId> &Pool,
              size_t NumQueries, uint64_t Seed, uint64_t &Fingerprint) {
  Rng R(Seed);
  uint64_t Fp = 0;
  auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I != NumQueries; ++I) {
    NodeId A = Pool[R.nextBelow(Pool.size())];
    switch (R.nextBelow(4)) {
    case 0:
    case 1: { // 50% pointsTo.
      auto List = Engine.pointsTo(A);
      Fp = Fp * 1099511628211ull + List->size();
      break;
    }
    case 2: { // 25% alias.
      NodeId B = Pool[R.nextBelow(Pool.size())];
      Fp = Fp * 1099511628211ull + (Engine.alias(A, B) ? 1 : 2);
      break;
    }
    default: { // 25% pointedBy.
      auto List = Engine.pointedBy(A);
      Fp = Fp * 1099511628211ull + List->size();
      break;
    }
    }
  }
  double Seconds = secondsSince(T0);
  Fingerprint = Fp;
  return Seconds > 0 ? double(NumQueries) / Seconds : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  std::string OutPath =
      Argc > 2 ? Argv[2] : std::string("BENCH_queries.json");
  printHeader("Query serving: snapshots, cache, warm-start re-solve",
              "serving extension", Scale);

  constexpr size_t NumQueries = 40000;
  constexpr size_t PoolSize = 128;
  constexpr double DeltaFrac = 0.05;

  std::vector<Suite> Suites = loadSuites(Scale);
  std::vector<QueryRow> Rows;
  bool Correct = true;

  // One ag.metrics.v2 snapshot per suite covering the whole serving
  // story: snapshot load, query mixes (LRU hits/misses), cold solve and
  // warm re-solve. Embedded into the JSON rows below.
  obs::setMetricsEnabled(true);

  for (const Suite &S : Suites) {
    obs::MetricsRegistry::instance().reset();
    QueryRow Row;
    Row.Suite = S.Name;

    // --- Snapshot: build, persist, time the load. -----------------------
    Snapshot Snap;
    Snap.Solution = solve(S.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                          nullptr, SolverOptions(), &S.Rep);
    Snap.CS = S.Reduced;
    Snap.SeedReps = S.Rep;
    std::string SnapPath = OutPath + "." + S.Name + ".snap.tmp";
    if (Status St = writeSnapshotFile(Snap, SnapPath); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return 1;
    }
    Snapshot Loaded;
    auto T0 = std::chrono::steady_clock::now();
    if (Status St = readSnapshotFile(SnapPath, Loaded); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return 1;
    }
    Row.SnapshotLoadMs = secondsSince(T0) * 1e3;
    std::remove(SnapPath.c_str());
    {
      std::string Bytes;
      (void)writeSnapshotBytes(Snap, Bytes);
      Row.SnapshotBytes = Bytes.size();
    }

    // --- Query throughput, cache on vs off. -----------------------------
    const uint32_t N = Loaded.CS.numNodes();
    std::vector<NodeId> Pool;
    Rng PoolR(S.Name.size() * 131 + 7);
    for (size_t I = 0; I != PoolSize; ++I)
      Pool.push_back(static_cast<NodeId>(PoolR.nextBelow(N)));

    QueryEngine::Options Uncached;
    Uncached.CacheCapacity = 0;
    QueryEngine Cold(Loaded, Uncached);
    QueryEngine Warm(std::move(Loaded)); // Default cache.

    uint64_t FpUncached = 0, FpCached = 0;
    Row.UncachedQps = runMix(Cold, Pool, NumQueries, 1234, FpUncached);
    Row.CachedQps = runMix(Warm, Pool, NumQueries, 1234, FpCached);
    Row.CacheSpeedup =
        Row.UncachedQps > 0 ? Row.CachedQps / Row.UncachedQps : 0;
    CacheStats CS = Warm.cacheStats();
    Row.HitRate = CS.Hits + CS.Misses > 0
                      ? double(CS.Hits) / double(CS.Hits + CS.Misses)
                      : 0;
    if (FpUncached != FpCached) {
      std::fprintf(stderr, "BUG: cached answers diverge on %s\n",
                   S.Name.c_str());
      Correct = false;
    }

    // --- Warm-start re-solve vs cold solve of the full system. ----------
    DeltaSplit Split = splitDelta(S.Reduced, DeltaFrac, 4242);
    Row.DeltaConstraints = Split.Delta.size();
    Snapshot BaseSnap;
    BaseSnap.Solution = solve(Split.Base, SolverKind::LCDHCD);
    BaseSnap.CS = Split.Base;
    BaseSnap.SeedReps.resize(Split.Base.numNodes());
    for (NodeId V = 0; V != Split.Base.numNodes(); ++V)
      BaseSnap.SeedReps[V] = V;

    ConstraintSystem FullCS = Split.Base;
    for (const Constraint &C : Split.Delta)
      FullCS.add(C);
    T0 = std::chrono::steady_clock::now();
    PointsToSolution ColdSol = solve(FullCS, SolverKind::LCDHCD);
    Row.ColdSolveMs = secondsSince(T0) * 1e3;

    IncrementalSolver Inc(std::move(BaseSnap));
    T0 = std::chrono::steady_clock::now();
    WarmStartResult R = Inc.resolve(Split.Delta);
    Row.WarmSolveMs = secondsSince(T0) * 1e3;
    Row.WarmSpeedup =
        Row.WarmSolveMs > 0 ? Row.ColdSolveMs / Row.WarmSolveMs : 0;
    if (R.Outcome != SolveOutcome::Precise || !(R.Solution == ColdSol)) {
      std::fprintf(stderr, "BUG: warm re-solve diverges on %s\n",
                   S.Name.c_str());
      Correct = false;
    }

    std::printf("%-14s load %6.2f ms  qps %9.0f -> %9.0f (x%5.1f, hit "
                "%4.1f%%)  re-solve %8.2f -> %8.2f ms (x%5.1f, %llu new)\n",
                S.Name.c_str(), Row.SnapshotLoadMs, Row.UncachedQps,
                Row.CachedQps, Row.CacheSpeedup, Row.HitRate * 100,
                Row.ColdSolveMs, Row.WarmSolveMs, Row.WarmSpeedup,
                static_cast<unsigned long long>(Row.DeltaConstraints));
    Row.MetricsJson =
        obs::MetricsRegistry::instance().renderJson(/*Compact=*/true);
    Rows.push_back(std::move(Row));
  }
  obs::setMetricsEnabled(false);

  std::string Json = "{\n";
  Json += "  \"scale\": " + std::to_string(Scale) + ",\n";
  Json += "  \"queries_per_mix\": " + std::to_string(NumQueries) + ",\n";
  Json += "  \"pool_size\": " + std::to_string(PoolSize) + ",\n";
  Json += "  \"delta_frac\": " + std::to_string(DeltaFrac) + ",\n";
  Json += "  \"suites\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const QueryRow &R = Rows[I];
    Json += "    {\"suite\": \"";
    appendJsonEscaped(Json, R.Suite);
    Json += "\", \"snapshot_bytes\": " + std::to_string(R.SnapshotBytes) +
            ", \"snapshot_load_ms\": " + std::to_string(R.SnapshotLoadMs) +
            ", \"uncached_qps\": " + std::to_string(R.UncachedQps) +
            ", \"cached_qps\": " + std::to_string(R.CachedQps) +
            ", \"cache_speedup\": " + std::to_string(R.CacheSpeedup) +
            ", \"cache_hit_rate\": " + std::to_string(R.HitRate) +
            ", \"cold_resolve_ms\": " + std::to_string(R.ColdSolveMs) +
            ", \"warm_resolve_ms\": " + std::to_string(R.WarmSolveMs) +
            ", \"warm_speedup\": " + std::to_string(R.WarmSpeedup) +
            ", \"delta_constraints\": " + std::to_string(R.DeltaConstraints) +
            ", \"metrics\": " + R.MetricsJson + "}";
    Json += I + 1 == Rows.size() ? "\n" : ",\n";
  }
  Json += "  ]\n}\n";

  if (std::FILE *F = std::fopen(OutPath.c_str(), "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
    std::printf("\nwrote %s\n", OutPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("cached == uncached answers, warm == cold solutions: %s\n",
              Correct ? "yes" : "NO — BUG");
  return Correct ? 0 : 1;
}
