//===- bench_precision.cpp - Steensgaard vs inclusion-based precision -----===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the argument the paper's introduction and conclusion rest
/// on: unification-based analyses (Steensgaard) are fast but much less
/// precise, and "it behooves an analysis to use the most precise pointer
/// information that it can reasonably acquire". For each suite this
/// compares Steensgaard against LCD+HCD on solve time, average points-to
/// set size, and the number of may-alias variable pairs among a sample.
///
/// Expected shape: Steensgaard solves fastest but its average set size
/// and alias-pair count are multiples of the inclusion-based analysis —
/// while LCD+HCD keeps inclusion-based precision at competitive speed,
/// which is the paper's whole point.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "adt/Rng.h"
#include "solvers/SteensgaardSolver.h"

#include <chrono>
#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Precision: Steensgaard vs LCD+HCD",
              "Sections 1, 2 and 6 (precision/performance trade-off)",
              Scale);

  std::printf("%-12s | %10s %10s %10s | %10s %10s %10s\n", "suite",
              "steens(s)", "avg|pts|", "aliases", "lcdhcd(s)", "avg|pts|",
              "aliases");

  for (const Suite &S : loadSuites(Scale)) {
    auto T0 = std::chrono::steady_clock::now();
    PointsToSolution Steens = solveSteensgaard(S.Reduced);
    double SteensSec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - T0)
                           .count();

    RunResult R = runSolver(S, SolverKind::LCDHCD, PtsRepr::Bitmap);
    PointsToSolution Andersen =
        solve(S.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
              SolverOptions(), &S.Rep, &S.Hcd);

    // Average set size over nodes with non-empty inclusion-based sets.
    auto avgSize = [&](const PointsToSolution &Sol) {
      uint64_t Total = 0, Count = 0;
      for (NodeId V = 0; V != Sol.numNodes(); ++V) {
        size_t Sz = Sol.pointsTo(V).count();
        if (Sz) {
          Total += Sz;
          ++Count;
        }
      }
      return Count ? double(Total) / Count : 0.0;
    };

    // May-alias pairs over a deterministic sample of pointer variables.
    // Sample only OVS representatives: Steensgaard runs on the reduced
    // system without the representative map, so merged-away ids would
    // read as empty sets and skew its counts low.
    Rng Rand(7);
    std::vector<NodeId> Sample;
    while (Sample.size() < 400) {
      NodeId V = static_cast<NodeId>(Rand.nextBelow(S.Reduced.numNodes()));
      if (S.Rep[V] == V)
        Sample.push_back(V);
    }
    auto aliasPairs = [&](const PointsToSolution &Sol) {
      uint64_t Pairs = 0;
      for (size_t I = 0; I != Sample.size(); ++I)
        for (size_t J = I + 1; J != Sample.size(); ++J)
          Pairs += Sol.mayAlias(Sample[I], Sample[J]);
      return Pairs;
    };

    std::printf("%-12s | %10.4f %10.2f %10llu | %10.4f %10.2f %10llu\n",
                S.Name.c_str(), SteensSec, avgSize(Steens),
                static_cast<unsigned long long>(aliasPairs(Steens)),
                R.Seconds, avgSize(Andersen),
                static_cast<unsigned long long>(aliasPairs(Andersen)));
  }
  std::printf("\n(soundness: Steensgaard's sets are supersets — checked "
              "by the test suite)\n");
  return 0;
}
