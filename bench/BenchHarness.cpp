//===- BenchHarness.cpp - Shared benchmark plumbing -----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "adt/ElementArena.h"
#include "adt/InternTable.h"
#include "adt/MemTracker.h"
#include "obs/MetricsRegistry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ag;
using namespace ag::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

double ag::bench::scaleFromArgs(int Argc, char **Argv, double Default) {
  if (Argc > 1)
    return std::atof(Argv[1]);
  if (const char *Env = std::getenv("AG_BENCH_SCALE"))
    return std::atof(Env);
  return Default;
}

std::vector<Suite> ag::bench::loadSuites(double Scale) {
  std::vector<Suite> Out;
  for (const BenchmarkSpec &Spec : paperSuites(Scale)) {
    Suite S;
    S.Name = Spec.Name;
    ConstraintSystem Raw = generateBenchmark(Spec);
    S.RawConstraints = Raw.constraints().size();

    auto T0 = std::chrono::steady_clock::now();
    OvsResult Ovs = runOfflineVariableSubstitution(Raw);
    S.OvsSeconds = secondsSince(T0);
    S.Reduced = std::move(Ovs.Reduced);
    S.Rep = std::move(Ovs.Rep);

    auto T1 = std::chrono::steady_clock::now();
    S.Hcd = runHcdOffline(S.Reduced);
    S.HcdOfflineSeconds = secondsSince(T1);

    S.NumBase = S.Reduced.countKind(ConstraintKind::AddressOf);
    S.NumSimple = S.Reduced.countKind(ConstraintKind::Copy);
    S.NumComplex = S.Reduced.countKind(ConstraintKind::Load) +
                   S.Reduced.countKind(ConstraintKind::Store);
    Out.push_back(std::move(S));
  }
  return Out;
}

RunResult ag::bench::runSolver(const Suite &S, SolverKind Kind,
                               PtsRepr Repr) {
  return runSolver(S, Kind, Repr, SolverOptions());
}

RunResult ag::bench::runSolver(const Suite &S, SolverKind Kind, PtsRepr Repr,
                               const SolverOptions &Opts,
                               bool CaptureMetrics) {
  RunResult R;
  bool MetricsWereOn = obs::metricsEnabled();
  if (CaptureMetrics) {
    obs::MetricsRegistry::instance().reset();
    obs::setMetricsEnabled(true);
  }
  MemTracker::instance().resetPeaks();
  ArenaStats::instance().resetPeaks();
  InternStats::instance().reset();
  uint64_t BitmapBase =
      MemTracker::instance().currentBytes(MemCategory::Bitmap);
  uint64_t BddBase =
      MemTracker::instance().currentBytes(MemCategory::BddTable);

  auto T0 = std::chrono::steady_clock::now();
  PointsToSolution Sol =
      solve(S.Reduced, Kind, Repr, &R.Stats, Opts, &S.Rep,
            usesHcd(Kind) ? &S.Hcd : nullptr);
  R.Seconds = secondsSince(T0);

  R.PeakBitmapBytes =
      MemTracker::instance().peakBytes(MemCategory::Bitmap) - BitmapBase;
  R.PeakBddBytes =
      MemTracker::instance().peakBytes(MemCategory::BddTable) - BddBase;
  R.SolutionHash = Sol.hash();
  R.TotalPtsSize = Sol.totalPointsToSize();
  R.ArenaPeakBytes = ArenaStats::instance().peakReservedBytes();
  R.ArenaPeakSlabs = ArenaStats::instance().peakSlabs();
  R.InternedHits = InternStats::instance().hits();
  R.InternedMisses = InternStats::instance().misses();
  PointsToSolution::SharingSummary Sh = Sol.sharingSummary();
  R.PhysicalSetBytes = Sh.PhysicalBytes;
  R.RoutedSetBytes = Sh.RoutedBytes;
  if (CaptureMetrics) {
    R.MetricsJson =
        obs::MetricsRegistry::instance().renderJson(/*Compact=*/true);
    obs::setMetricsEnabled(MetricsWereOn);
  }
  return R;
}

void ag::bench::printHeader(const char *Experiment, const char *PaperRef,
                            double Scale) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", Experiment);
  std::printf("reproduces: %s (Hardekopf & Lin, PLDI 2007)\n", PaperRef);
  std::printf("workload scale: %.2f (1.0 ~ paper sizes / 8); single run "
              "per cell\n",
              Scale);
  std::printf("==============================================================="
              "=\n");
}
