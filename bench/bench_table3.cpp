//===- bench_table3.cpp - Solve times, bitmap points-to (Table 3) ---------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3: wall-clock solve time for the nine algorithms on
/// each suite, using sparse bitmaps for points-to sets. The HCD offline
/// analysis is timed separately (first row), as in the paper.
///
/// Expected shape (paper): HT is the fastest prior algorithm (1.9x over
/// PKH, 6.5x over BLQ); LCD edges out HT; adding HCD speeds HT/PKH/LCD by
/// 3-5x and barely moves BLQ; LCD+HCD is fastest overall (3.2x HT,
/// 6.4x PKH, 20.6x BLQ on the paper's machines).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>
#include <map>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Table 3: performance (seconds), bitmap points-to sets",
              "Table 3 / Figure 6", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);

  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf("\n%-11s", "HCD-Offline");
  for (const Suite &S : Suites)
    std::printf(" %11.4f", S.HcdOfflineSeconds);
  std::printf("\n");

  std::map<std::string, uint64_t> Hashes;
  bool AllAgree = true;
  for (SolverKind Kind : AllSolverKinds) {
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    for (const Suite &S : Suites) {
      RunResult R = runSolver(S, Kind, PtsRepr::Bitmap);
      std::printf(" %11.4f", R.Seconds);
      std::fflush(stdout);
      auto [It, New] = Hashes.try_emplace(S.Name, R.SolutionHash);
      if (!New && It->second != R.SolutionHash)
        AllAgree = false;
    }
    std::printf("\n");
  }
  std::printf("\nsolution agreement across algorithms: %s\n",
              AllAgree ? "yes" : "NO — BUG");
  return AllAgree ? 0 : 1;
}
