//===- bench_fig8.cpp - Effect of adding HCD (Figure 8) -------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 8: each main algorithm's time normalized by its
/// HCD-enhanced counterpart, per suite (bars > 1 mean HCD helped).
///
/// Expected shape (paper): HCD speeds HT by ~3.2x, PKH by ~5x, LCD by
/// ~3.2x, and BLQ by only ~1.1x (propagation is already cheap in BDDs and
/// collapse has overhead).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cmath>
#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Figure 8: time of X normalized to X+HCD (per suite)",
              "Figure 8", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  const std::pair<SolverKind, SolverKind> Pairs[] = {
      {SolverKind::HT, SolverKind::HTHCD},
      {SolverKind::PKH, SolverKind::PKHHCD},
      {SolverKind::BLQ, SolverKind::BLQHCD},
      {SolverKind::LCD, SolverKind::LCDHCD},
  };

  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf(" %9s\n", "geomean");

  for (auto [Plain, WithHcd] : Pairs) {
    std::printf("%-11s", solverKindName(Plain));
    std::fflush(stdout);
    double LogSum = 0;
    for (const Suite &S : Suites) {
      double TPlain = runSolver(S, Plain, PtsRepr::Bitmap).Seconds;
      double THcd = runSolver(S, WithHcd, PtsRepr::Bitmap).Seconds;
      double Ratio = TPlain / THcd;
      LogSum += std::log(Ratio);
      std::printf(" %11.2f", Ratio);
      std::fflush(stdout);
    }
    std::printf(" %9.2f\n", std::exp(LogSum / Suites.size()));
  }
  return 0;
}
