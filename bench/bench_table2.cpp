//===- bench_table2.cpp - Benchmark characteristics (Table 2) -------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: for each suite, the original number of constraints,
/// the reduced number after offline variable substitution, and the
/// breakdown of the reduced constraints into base / simple / complex.
/// Also reports the OVS preprocessing time, which the paper notes is
/// "less than a second" to "1-3 seconds" per benchmark.
///
/// Expected shape: OVS removes a large fraction of the constraints
/// (the paper reports 60-77%); suite sizes grow monotonically from emacs
/// to linux, with wine and linux the largest.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Table 2: benchmark suites", "Table 2", Scale);

  std::printf("%-12s %9s %9s %9s | %8s %8s %8s | %8s\n", "suite",
              "nodes", "original", "reduced", "base", "simple", "complex",
              "ovs(ms)");
  for (const Suite &S : loadSuites(Scale)) {
    double ReducedPct =
        100.0 * (1.0 - double(S.Reduced.constraints().size()) /
                           double(S.RawConstraints));
    std::printf("%-12s %9u %9llu %9zu | %8llu %8llu %8llu | %8.1f   "
                "(-%.0f%%)\n",
                S.Name.c_str(), S.Reduced.numNodes(),
                static_cast<unsigned long long>(S.RawConstraints),
                S.Reduced.constraints().size(),
                static_cast<unsigned long long>(S.NumBase),
                static_cast<unsigned long long>(S.NumSimple),
                static_cast<unsigned long long>(S.NumComplex),
                S.OvsSeconds * 1e3, ReducedPct);
  }
  return 0;
}
