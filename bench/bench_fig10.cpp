//===- bench_fig10.cpp - Bitmap vs BDD memory (Figure 10) -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 10: per-algorithm peak memory of the bitmap
/// implementation normalized by its BDD counterpart, per suite (bars > 1
/// mean bitmaps use more memory).
///
/// Expected shape (paper): bitmaps use about 5.5x more memory on average;
/// on the smallest suite the fixed initial BDD table can make the ratio
/// dip below 1.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cmath>
#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader(
      "Figure 10: bitmap memory normalized to BDD memory (per algorithm)",
      "Figure 10", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  std::printf("%-11s", "");
  for (const Suite &S : Suites)
    std::printf(" %11s", S.Name.c_str());
  std::printf(" %9s\n", "geomean");

  double AllLogSum = 0;
  unsigned AllCount = 0;
  for (SolverKind Kind : AllSolverKinds) {
    if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD)
      continue;
    std::printf("%-11s", solverKindName(Kind));
    std::fflush(stdout);
    double LogSum = 0;
    for (const Suite &S : Suites) {
      double MBitmap = runSolver(S, Kind, PtsRepr::Bitmap).peakMb();
      double MBdd = runSolver(S, Kind, PtsRepr::Bdd).peakMb();
      double Ratio = MBitmap / MBdd;
      LogSum += std::log(Ratio);
      std::printf(" %11.2f", Ratio);
      std::fflush(stdout);
    }
    std::printf(" %9.2f\n", std::exp(LogSum / Suites.size()));
    AllLogSum += LogSum;
    AllCount += Suites.size();
  }
  std::printf("\noverall bitmap/BDD memory ratio (geomean): %.2fx\n",
              std::exp(AllLogSum / AllCount));
  return 0;
}
