//===- bench_metrics.cpp - Section 5.3 behaviour metrics ------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 5.3 analysis: the three quantities that explain
/// relative performance — nodes collapsed, nodes searched by DFS, and
/// points-to propagations — for HT, PKH, LCD and HCD, plus the effect of
/// adding HCD on propagation counts.
///
/// Expected shape (paper): HT and LCD collapse over 99% of what PKH (the
/// complete detector) collapses, HCD alone 46-74%; HCD searches zero
/// nodes, HT the fewest among searchers, PKH ~2.6x HT, LCD the most (~8x
/// HT); LCD has the fewest propagations, HCD the most (~5.2x LCD); adding
/// HCD cuts propagations by ~7-10x for HT/PKH/LCD.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace ag;
using namespace ag::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printHeader("Section 5.3: nodes collapsed / searched, propagations",
              "Section 5.3 discussion", Scale);

  std::vector<Suite> Suites = loadSuites(Scale);
  const SolverKind Kinds[] = {SolverKind::HT, SolverKind::PKH,
                              SolverKind::LCD, SolverKind::HCD,
                              SolverKind::HTHCD, SolverKind::PKHHCD,
                              SolverKind::LCDHCD};

  for (const Suite &S : Suites) {
    std::printf("\n-- %s (%zu constraints)\n", S.Name.c_str(),
                S.Reduced.constraints().size());
    std::printf("  %-9s %12s %12s %14s %14s\n", "algorithm", "collapsed",
                "searched", "propagations", "changed-props");
    for (SolverKind Kind : Kinds) {
      RunResult R = runSolver(S, Kind, PtsRepr::Bitmap);
      std::printf("  %-9s %12llu %12llu %14llu %14llu\n",
                  solverKindName(Kind),
                  static_cast<unsigned long long>(R.Stats.NodesCollapsed),
                  static_cast<unsigned long long>(R.Stats.NodesSearched),
                  static_cast<unsigned long long>(R.Stats.Propagations),
                  static_cast<unsigned long long>(
                      R.Stats.ChangedPropagations));
    }
  }
  return 0;
}
